"""SLO-driven elastic fleet autoscaling in virtual time.

PR 4–5 built the data plane (``ClusterService``, ``FleetPlanner``, the
DP partitioner) and the sensors (``SloMonitor``, the flight recorder);
this module closes the loop.  A :class:`FleetAutoscaler` replays a
request stream through a pipelined fleet exactly like
:class:`~repro.cluster.serving.ClusterService`, but every
``evaluate_every_s`` of virtual time it runs a **control tick**:

1. feed the sliding-window :class:`~repro.serve.slo.SloMonitor` every
   terminal request that has *finished by the tick* (causality: the
   controller never sees the future);
2. evaluate the SLOs and read the admission-queue depth;
3. decide — **scale up** when the breach streak clears the hysteresis
   bar (``scale_up_after`` consecutive breached ticks) and the cooldown
   has expired; **scale down** when the idle streak clears its own bar;
   otherwise hold.  A decision the cooldown vetoes is recorded as a
   ``flap_suppressed`` flight event — the post-mortem shows what the
   controller *wanted* to do.

Scale-up is charged a modeled **spin-up cost** before the grown fleet
takes effect: base node provisioning plus key generation plus
design-cache warm-up, each component waived when the corresponding cache
is already hot (:class:`SpinUpCostModel` — the *expected* cost reads the
``cache_hit_ratio`` gauges the caches publish; the *charged* cost probes
the actual caches, so a warm scale-up charges exactly zero keygen/DSE
seconds).  The old fleet keeps serving while the new node warms.
Scale-down takes effect immediately for new dispatches, but the retiring
node is **billed until its in-flight work drains** (drain-before-retire).
Every resize re-partitions the pipeline through the existing DP
partitioner via the shared :class:`~repro.cluster.dse.FleetPlanner`
design cache — warm replans scan zero DSE points.

Every decision lands in three places: the flight recorder
(``scale_up`` / ``scale_down`` / ``flap_suppressed``), the registry
(``autoscale_decisions_total``, the ``fleet_size`` gauge) and the
virtual-time Perfetto trace (spin-up and drain spans on the autoscaler's
own track).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.dse import FleetPlanner
    from ..cluster.fleet import Link
    from ..cluster.plan import ClusterPlan
    from ..cluster.serving import ClusterService

from ..fpga.device import FpgaDevice
from ..hecnn.batched import cryptonets_mnist_batched, max_batch_lanes
from ..obs.alerts import AlertEngine
from ..obs.probes import (
    record_autoscale_decision,
    record_batch_dispatch,
    record_cluster_batch,
    record_fleet_size,
    record_flight,
    record_queue_depth,
    record_request_latency,
    record_request_outcome,
    record_spin_up_cost,
    record_throughput,
    record_timeseries_flush,
    record_timeseries_tick,
)
from ..obs.registry import REGISTRY
from ..obs.tracing import emit_virtual, trace_span
from .cache import ContextCache
from .costs import CostLedger
from .records import BatchRecord, RequestResult, ServeReport
from .request import InferenceRequest
from .scheduler import SchedulerConfig, _request_tid
from .slo import Slo, SloMonitor, _percentile

#: Virtual-trace track for autoscaler spans (spin-up, drain) — far above
#: the request tracks (``request_id + 1``) and the cluster stage tracks.
AUTOSCALE_TID = 20_000_000


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs of the control loop.

    Hysteresis is two-sided: a scale-up needs ``scale_up_after``
    *consecutive* breached ticks, a scale-down ``scale_down_after``
    consecutive idle ones, and any resize starts a ``cooldown_s``
    refractory period during which further resizes are suppressed (and
    recorded as ``flap_suppressed``).  ``queue_high`` is the fast path:
    admission-queue depth reacts to a flash crowd within a tick or two,
    long before the first overlong latencies complete and reach the
    sliding SLO window.
    """

    min_nodes: int = 1
    max_nodes: int = 3
    #: Control-tick interval in virtual seconds.
    evaluate_every_s: float = 2.0
    #: Refractory period after any resize.
    cooldown_s: float = 20.0
    #: Consecutive breached ticks before a scale-up.
    scale_up_after: int = 2
    #: Consecutive idle ticks before a scale-down.
    scale_down_after: int = 5
    #: Queue depth above which a tick counts as breached.
    queue_high: int = 250
    #: Queue depth at or below which a tick may count as idle.
    queue_low: int = 60
    #: Scale-down additionally requires p99 <= slack * threshold, so the
    #: fleet never shrinks into a marginal latency budget.
    p99_slack: float = 0.95
    #: Nodes added/removed per decision.
    step: int = 1

    def __post_init__(self) -> None:
        if self.min_nodes < 1 or self.max_nodes < self.min_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if self.evaluate_every_s <= 0 or self.cooldown_s < 0:
            raise ValueError("evaluate_every_s must be > 0, cooldown_s >= 0")
        if self.scale_up_after < 1 or self.scale_down_after < 1:
            raise ValueError("hysteresis streaks must be >= 1")
        if self.queue_low < 0 or self.queue_high < self.queue_low:
            raise ValueError("need 0 <= queue_low <= queue_high")
        if not 0 < self.p99_slack <= 1:
            raise ValueError("p99_slack must be in (0, 1]")
        if self.step < 1:
            raise ValueError("step must be >= 1")

    def as_dict(self) -> dict[str, Any]:
        return {
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "evaluate_every_s": self.evaluate_every_s,
            "cooldown_s": self.cooldown_s,
            "scale_up_after": self.scale_up_after,
            "scale_down_after": self.scale_down_after,
            "queue_high": self.queue_high,
            "queue_low": self.queue_low,
            "p99_slack": self.p99_slack,
            "step": self.step,
        }


@dataclass(frozen=True)
class SpinUpCostModel:
    """Virtual seconds to bring one node from rack to serving.

    Three additive components: base provisioning (always paid), CKKS key
    generation (waived when the context cache already holds the
    deployment's key material) and design-cache warm-up (waived when the
    planner's design cache already holds the network's designs — e.g.
    after the capacity planner pre-warmed the deployment, or any earlier
    scale-up).
    """

    #: Base provisioning: bitstream load, link bring-up.
    node_warm_s: float = 0.5
    #: Key generation + weight provisioning on a cold context cache.
    keygen_s: float = 30.0
    #: Design-space exploration on a cold design cache.
    design_warm_s: float = 5.0

    def __post_init__(self) -> None:
        if min(self.node_warm_s, self.keygen_s, self.design_warm_s) < 0:
            raise ValueError("spin-up cost components must be >= 0")

    def estimate(self) -> float:
        """*Expected* spin-up cost from the published hit-ratio gauges.

        Reads ``cache_hit_ratio{cache="design"}`` and
        ``cache_hit_ratio{cache="context"}`` — the gauges
        :class:`~repro.caching.LruCache` keeps in lock-step with its
        stats — instead of re-deriving warmth from raw event counters.
        A cache that has never been touched reads 0.0 (fully cold).
        """
        design_ratio = REGISTRY.gauge("cache_hit_ratio", cache="design").value
        context_ratio = REGISTRY.gauge(
            "cache_hit_ratio", cache="context"
        ).value
        return (
            self.node_warm_s
            + (1.0 - design_ratio) * self.design_warm_s
            + (1.0 - context_ratio) * self.keygen_s
        )

    def charge(self, design_warm: bool, context_warm: bool) -> float:
        """The *charged* cost given exact cache probes: a fully warm
        scale-up pays only base provisioning — zero keygen, zero DSE."""
        cost = self.node_warm_s
        if not design_warm:
            cost += self.design_warm_s
        if not context_warm:
            cost += self.keygen_s
        return cost

    def as_dict(self) -> dict[str, Any]:
        return {
            "node_warm_s": self.node_warm_s,
            "keygen_s": self.keygen_s,
            "design_warm_s": self.design_warm_s,
        }


@dataclass(frozen=True)
class ScaleDecision:
    """One control decision, including the ones the cooldown vetoed."""

    at_s: float
    action: str  # scale_up | scale_down | flap_suppressed
    from_nodes: int
    to_nodes: int
    reason: str
    #: Charged spin-up seconds (scale-up only).
    spin_up_s: float = 0.0
    #: When the resized plan starts serving.
    effective_s: float = 0.0
    #: Drain-before-retire horizon (scale-down only).
    drain_until_s: float | None = None
    #: Both caches were hot — zero keygen/DSE charged (scale-up only).
    warm: bool | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "at_s": self.at_s,
            "action": self.action,
            "from_nodes": self.from_nodes,
            "to_nodes": self.to_nodes,
            "reason": self.reason,
            "spin_up_s": self.spin_up_s,
            "effective_s": self.effective_s,
            "drain_until_s": self.drain_until_s,
            "warm": self.warm,
        }


@dataclass(frozen=True)
class AutoscaleReport:
    """A full elastic-serving session: the serve report plus the
    control-plane record (decisions, fleet timeline, node-seconds)."""

    serve: ServeReport
    decisions: tuple[ScaleDecision, ...]
    #: ``(virtual_seconds, serving_fleet_size)`` step function.
    timeline: tuple[tuple[float, int], ...]
    #: Billed node-seconds — includes spin-up and drain intervals.
    node_seconds: float
    end_s: float
    policy: dict[str, Any] = field(default_factory=dict)
    spin_up: dict[str, Any] = field(default_factory=dict)

    @property
    def peak_nodes(self) -> int:
        return max(size for _, size in self.timeline)

    @property
    def resizes(self) -> tuple[ScaleDecision, ...]:
        return tuple(
            d for d in self.decisions if d.action != "flap_suppressed"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "serve": self.serve.to_dict(),
            "decisions": [d.as_dict() for d in self.decisions],
            "timeline": [list(point) for point in self.timeline],
            "node_seconds": self.node_seconds,
            "end_s": self.end_s,
            "peak_nodes": self.peak_nodes,
            "policy": self.policy,
            "spin_up": self.spin_up,
        }


def p99_windows(
    report: ServeReport,
    window_s: float,
    threshold_s: float,
    start_s: float = 0.0,
) -> list[dict[str, Any]]:
    """Per-window p99 verdicts over a finished report's completions.

    Buckets completed requests by *finish* time into ``window_s`` bins
    from ``start_s`` and measures each bin's p99 latency against
    ``threshold_s``; empty bins pass vacuously.  The bench's headline
    assertion — "p99 held for >= 99% of windows after the surge's first
    cooldown interval" — is a fold over this table.
    """
    if window_s <= 0:
        raise ValueError("window_s must be > 0")
    finished = [
        r for r in report.results
        if r.finish_s is not None and r.latency_s is not None
        and r.finish_s >= start_s
    ]
    if not finished:
        return []
    end = max(r.finish_s for r in finished)
    count = int((end - start_s) // window_s) + 1
    bins: list[list[float]] = [[] for _ in range(count)]
    for r in finished:
        bins[int((r.finish_s - start_s) // window_s)].append(r.latency_s)
    rows = []
    for b, lats in enumerate(bins):
        lats.sort()
        p99 = _percentile(lats, 99.0)
        rows.append({
            "start_s": start_s + b * window_s,
            "p99_s": p99,
            "samples": len(lats),
            "ok": (not lats) or p99 <= threshold_s,
        })
    return rows


def held_fraction(
    report: ServeReport,
    window_s: float,
    threshold_s: float,
    start_s: float = 0.0,
) -> float:
    """Fraction of p99 windows meeting the threshold (1.0 when empty)."""
    rows = p99_windows(report, window_s, threshold_s, start_s)
    if not rows:
        return 1.0
    return sum(1 for r in rows if r["ok"]) / len(rows)


class FleetAutoscaler:
    """The virtual-time elastic control loop over a homogeneous fleet.

    The data plane is :class:`~repro.cluster.serving.ClusterService`
    semantics — admission queue, batch window, deadline expiry at
    dispatch, one admission per bottleneck interval — swapped between
    pre-planned fleet sizes by the control ticks described in the module
    docstring.  With ``prewarm=True`` (the deployment default) every
    size in ``[min_nodes, max_nodes]`` is planned at construction
    through the shared design cache and the context key material is
    provisioned once, so every runtime resize is a *warm* replan:
    ``dse_points_scanned`` stays flat and no keygen is charged.
    """

    def __init__(
        self,
        device: FpgaDevice,
        poly_degree: int = 8192,
        policy: AutoscalerConfig | None = None,
        spin_up: SpinUpCostModel | None = None,
        planner: FleetPlanner | None = None,
        contexts: ContextCache | None = None,
        config: SchedulerConfig | None = None,
        slos: tuple[Slo, ...] | list[Slo] | None = None,
        method: str = "dp",
        link: Link | None = None,
        prewarm: bool = True,
        ledger: CostLedger | None = None,
        alerts: AlertEngine | None = None,
    ) -> None:
        # Imported here, not at module top: ``repro.cluster`` imports
        # this package back (dse -> serve.cache), so a module-level
        # import would be circular whenever the cluster package loads
        # first.
        from ..cluster.dse import FleetPlanner
        from ..cluster.fleet import Fleet

        self.device = device
        self.poly_degree = poly_degree
        self.policy = policy or AutoscalerConfig()
        self.spin_up = spin_up or SpinUpCostModel()
        self.planner = planner or FleetPlanner()
        self.contexts = contexts or ContextCache()
        self.config = config or SchedulerConfig()
        self.method = method
        self.trace = cryptonets_mnist_batched(poly_degree)
        if self.policy.max_nodes > len(self.trace.layers):
            raise ValueError(
                f"max_nodes {self.policy.max_nodes} exceeds the pipeline "
                f"depth ({len(self.trace.layers)} layers)"
            )
        lanes = max_batch_lanes(poly_degree)
        self.capacity = min(self.config.max_lanes or lanes, lanes)
        self.slos = tuple(slos) if slos is not None else (
            Slo("p99-latency", "p99_latency_s", 13.0, window=1000),
        )
        #: Optional per-tenant cost attribution: batches are charged at
        #: dispatch; billed node-seconds settle when the run drains.
        self.ledger = ledger
        #: Optional alert engine ticked at every control tick.
        self.alerts = alerts
        self._fleets = {
            n: Fleet.homogeneous(device, n, link=link)
            for n in range(self.policy.min_nodes, self.policy.max_nodes + 1)
        }
        self._plans: dict[int, ClusterPlan] = {}
        self._services: dict[int, ClusterService] = {}
        if prewarm:
            self.warm()

    # -- deployment prep ------------------------------------------------------

    @property
    def _context_key(self) -> tuple[str, str, int]:
        return (self.trace.name, self.device.name, self.poly_degree)

    def warm(self) -> None:
        """Pre-plan every reachable fleet size and provision keys, so
        runtime resizes hit only warm caches (what a capacity-planned
        deployment does before taking traffic)."""
        for n in self._fleets:
            self._plan_for(n)
        self.contexts.get_or_create(self._context_key, lambda: object())

    def _plan_for(self, n: int) -> ClusterPlan:
        plan = self._plans.get(n)
        if plan is None:
            plan = self.planner.plan(
                self.trace, self._fleets[n], method=self.method
            )
            self._plans[n] = plan
        return plan

    def _service_for(self, n: int) -> ClusterService:
        from ..cluster.serving import ClusterService

        svc = self._services.get(n)
        if svc is None:
            svc = ClusterService(
                self._plan_for(n),
                batch_capacity=max_batch_lanes(self.poly_degree),
                config=self.config,
            )
            self._services[n] = svc
        return svc

    def _probe_warmth(self) -> tuple[bool, bool]:
        """Exact (design_warm, context_warm) cache probes — stat-neutral."""
        design_warm = self.planner.designs.contains(self.trace, self.device)
        context_warm = self._context_key in self.contexts
        return design_warm, context_warm

    # -- the control loop -----------------------------------------------------

    def run(self, requests: list[InferenceRequest]) -> AutoscaleReport:
        with trace_span(
            "autoscale.serve", category="autoscale",
            device=self.device.name, min_nodes=self.policy.min_nodes,
            max_nodes=self.policy.max_nodes,
        ) as span:
            report = self._run(requests)
            span.set(
                completed=report.serve.completed,
                resizes=len(report.resizes),
                node_seconds=report.node_seconds,
            )
        return report

    def _run(self, requests: list[InferenceRequest]) -> AutoscaleReport:
        policy = self.policy
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        queue: list[InferenceRequest] = []
        results: list[RequestResult] = []
        batches: list[BatchRecord] = []
        monitor = SloMonitor(self.slos)
        p99_slo = next(
            (s for s in self.slos if s.objective == "p99_latency_s"), None
        )
        #: (finish_s, seq, outcome, latency) — fed to the monitor causally.
        terminals: list[tuple[float, int, str, float | None]] = []
        seq = 0

        size = policy.min_nodes
        plan = self._plan_for(size)
        #: (effective_s, new_size) while a spin-up is in flight.
        activation: tuple[float, int] | None = None
        next_tick = policy.evaluate_every_s
        cooldown_until = 0.0
        breach_streak = idle_streak = 0
        suppressed_this_streak = False
        decisions: list[ScaleDecision] = []
        timeline: list[tuple[float, int]] = [(0.0, size)]
        #: (at_s, node_delta) — billed capacity changes (spin-up from
        #: decision time; retiring nodes until drain).
        billing: list[tuple[float, int]] = [(0.0, size)]
        admit_free_at = 0.0
        last_finish = 0.0
        i = 0
        record_fleet_size(size)

        def push_terminal(
            finish: float, outcome: str, latency: float | None
        ) -> None:
            nonlocal seq
            heapq.heappush(terminals, (finish, seq, outcome, latency))
            seq += 1

        def admit_until(t: float) -> None:
            nonlocal i
            while i < len(pending) and pending[i].arrival_s <= t:
                req = pending[i]
                i += 1
                if len(queue) >= self.config.queue_capacity:
                    results.append(RequestResult(
                        request_id=req.request_id, outcome="rejected",
                        arrival_s=req.arrival_s,
                    ))
                    record_request_outcome(
                        "rejected", request_id=req.request_id,
                        trace_id=req.trace_ref, queue="autoscale",
                    )
                    push_terminal(req.arrival_s, "rejected", None)
                else:
                    queue.append(req)
                    record_flight(
                        "admit", request_id=req.request_id,
                        trace_id=req.trace_ref, queue="autoscale",
                        depth=len(queue),
                    )
                record_queue_depth(len(queue), queue="autoscale")

        def decide(t: float) -> bool:
            """One control decision at tick ``t``; True if the plan
            serving new dispatches changed."""
            nonlocal size, plan, activation, cooldown_until
            nonlocal breach_streak, idle_streak, suppressed_this_streak
            if activation is not None:
                return False  # a resize is already in flight
            want_up = (
                breach_streak >= policy.scale_up_after
                and size < policy.max_nodes
            )
            want_down = (
                idle_streak >= policy.scale_down_after
                and size > policy.min_nodes
            )
            if not want_up and not want_down:
                suppressed_this_streak = False
                return False
            if t < cooldown_until:
                if not suppressed_this_streak:
                    suppressed_this_streak = True
                    action = "scale_up" if want_up else "scale_down"
                    decisions.append(ScaleDecision(
                        at_s=t, action="flap_suppressed",
                        from_nodes=size, to_nodes=size,
                        reason=f"cooldown until {cooldown_until:.1f}s "
                               f"vetoed {action}",
                    ))
                    record_autoscale_decision(
                        "flap_suppressed", size, at_s=t,
                        wanted=action, cooldown_until_s=cooldown_until,
                    )
                return False
            suppressed_this_streak = False
            if want_up:
                new = min(size + policy.step, policy.max_nodes)
                design_warm, context_warm = self._probe_warmth()
                cost = self.spin_up.charge(design_warm, context_warm)
                warm = design_warm and context_warm
                record_spin_up_cost(cost, warm=warm)
                # Re-partition for the grown fleet through the DP
                # partitioner; warm design caches make this free.
                self._plan_for(new)
                self.contexts.get_or_create(
                    self._context_key, lambda: object()
                )
                activation = (t + cost, new)
                billing.append((t, new - size))
                reason = (
                    f"breach streak {breach_streak} "
                    f"(queue or SLO) at {size} nodes"
                )
                decisions.append(ScaleDecision(
                    at_s=t, action="scale_up", from_nodes=size,
                    to_nodes=new, reason=reason, spin_up_s=cost,
                    effective_s=t + cost, warm=warm,
                ))
                record_autoscale_decision(
                    "scale_up", new, at_s=t, from_nodes=size,
                    spin_up_s=cost, warm=warm, reason=reason,
                )
                emit_virtual(
                    f"spin_up {size}->{new}", "autoscale", t, cost,
                    tid=AUTOSCALE_TID,
                    args={"from_nodes": size, "to_nodes": new,
                          "spin_up_s": cost, "warm": warm},
                )
                cooldown_until = t + policy.cooldown_s
                breach_streak = 0
                return False  # old plan serves until activation
            # Scale-down: new dispatches use the shrunk plan at once;
            # the retiring node is billed until its pipeline drains.
            new = max(size - policy.step, policy.min_nodes)
            drain_until = max(t, last_finish)
            reason = f"idle streak {idle_streak} at {size} nodes"
            decisions.append(ScaleDecision(
                at_s=t, action="scale_down", from_nodes=size,
                to_nodes=new, reason=reason, effective_s=t,
                drain_until_s=drain_until,
            ))
            record_autoscale_decision(
                "scale_down", new, at_s=t, from_nodes=size,
                drain_until_s=drain_until, reason=reason,
            )
            emit_virtual(
                f"drain {size}->{new}", "autoscale", t,
                max(0.0, drain_until - t), tid=AUTOSCALE_TID,
                args={"from_nodes": size, "to_nodes": new,
                      "drain_until_s": drain_until},
            )
            billing.append((drain_until, new - size))
            size = new
            plan = self._plan_for(size)
            timeline.append((t, size))
            record_fleet_size(size)
            cooldown_until = t + policy.cooldown_s
            idle_streak = 0
            return True

        def ticks_until(t_limit: float) -> bool:
            """Fire activations and control ticks up to ``t_limit``;
            True if the serving plan changed."""
            nonlocal size, plan, activation, next_tick
            nonlocal breach_streak, idle_streak
            changed = False
            while True:
                act_at = activation[0] if activation else float("inf")
                event_at = min(next_tick, act_at)
                if event_at > t_limit:
                    break
                if act_at <= next_tick and activation is not None:
                    size = activation[1]
                    activation = None
                    plan = self._plan_for(size)
                    timeline.append((act_at, size))
                    record_fleet_size(size)
                    record_flight(
                        "fleet_resized", fleet_size=size, at_s=act_at,
                        fleet=plan.fleet.name,
                    )
                    changed = True
                    continue
                t = next_tick
                next_tick += policy.evaluate_every_s
                admit_until(t)
                while terminals and terminals[0][0] <= t:
                    _, _, outcome, latency = heapq.heappop(terminals)
                    monitor.observe(outcome, latency)
                statuses = monitor.evaluate()
                record_timeseries_tick(t)
                if self.alerts is not None:
                    self.alerts.tick(t)
                depth = len(queue)
                breach = (
                    any(not s.ok for s in statuses)
                    or depth > policy.queue_high
                )
                slack_ok = True
                if p99_slo is not None:
                    p99_value = next(
                        s.value for s in statuses if s.slo is p99_slo
                    )
                    slack_ok = (
                        p99_value <= policy.p99_slack * p99_slo.threshold
                    )
                idle = (
                    not breach
                    and depth <= policy.queue_low
                    and slack_ok
                )
                breach_streak = breach_streak + 1 if breach else 0
                idle_streak = idle_streak + 1 if idle else 0
                if decide(t):
                    changed = True
            return changed

        while i < len(pending) or queue:
            if not queue:
                ticks_until(pending[i].arrival_s)
                admit_until(pending[i].arrival_s)
                continue
            interval = plan.bottleneck_seconds
            transit = plan.fill_latency_seconds
            oldest = queue[0]
            window_close = oldest.arrival_s + self.config.batch_window_s
            if len(queue) < self.capacity and (
                i < len(pending) and pending[i].arrival_s <= window_close
            ):
                next_arrival = pending[i].arrival_s
                if ticks_until(next_arrival):
                    continue
                admit_until(next_arrival)
                continue
            if len(queue) >= self.capacity:
                dispatch_at = max(admit_free_at, oldest.arrival_s)
            else:
                dispatch_at = max(admit_free_at, window_close)
            if ticks_until(dispatch_at):
                continue  # plan changed — recompute the dispatch
            admit_until(dispatch_at)

            alive: list[InferenceRequest] = []
            for req in queue:
                if req.expired(dispatch_at):
                    results.append(RequestResult(
                        request_id=req.request_id, outcome="expired",
                        arrival_s=req.arrival_s,
                    ))
                    record_request_outcome(
                        "expired", request_id=req.request_id,
                        trace_id=req.trace_ref, queue="autoscale",
                    )
                    push_terminal(dispatch_at, "expired", None)
                    emit_virtual(
                        "expired", "request", req.arrival_s,
                        dispatch_at - req.arrival_s,
                        tid=_request_tid(req.request_id),
                        args={"trace_id": req.trace_ref,
                              "request_id": req.request_id},
                    )
                else:
                    alive.append(req)
            queue = alive
            record_queue_depth(len(queue), queue="autoscale")
            if not queue:
                continue

            batch = queue[: self.capacity]
            queue = queue[len(batch):]
            record_queue_depth(len(queue), queue="autoscale")
            finish = dispatch_at + transit
            last_finish = max(last_finish, finish)
            batch_id = len(batches)
            for req in batch:
                latency = finish - req.arrival_s
                results.append(RequestResult(
                    request_id=req.request_id, outcome="cluster",
                    arrival_s=req.arrival_s, start_s=dispatch_at,
                    finish_s=finish, batch_id=batch_id,
                ))
                record_request_outcome("cluster")
                record_request_latency(latency, "cluster")
                push_terminal(finish, "cluster", latency)
                journey = {"trace_id": req.trace_ref,
                           "request_id": req.request_id,
                           "batch_id": batch_id}
                emit_virtual(
                    "queue_wait", "request", req.arrival_s,
                    dispatch_at - req.arrival_s,
                    tid=_request_tid(req.request_id), args=journey,
                )
                emit_virtual(
                    "response", "request", finish, 0.0,
                    tid=_request_tid(req.request_id),
                    args={**journey, "latency_s": latency},
                )
            batches.append(BatchRecord(
                batch_id=batch_id, mode="cluster", lanes=len(batch),
                capacity=self.capacity, start_s=dispatch_at,
                finish_s=finish,
            ))
            record_batch_dispatch(len(batch), self.capacity, "cluster")
            record_cluster_batch(len(batch), transit)
            if self.ledger is not None:
                # Slot time is the batch's stage-compute occupancy of
                # the *current* plan; wire bytes and per-inference
                # energy likewise follow the plan serving the dispatch.
                self.ledger.note_batch(
                    [r.key_group for r in batch],
                    sum(s.compute_seconds for s in plan.stages),
                    wire_bytes=plan.total_transfer_bytes,
                )
                for stage in plan.stages:
                    if stage.transfer_bytes:
                        self.ledger.note_stage_wire(
                            f"stage{stage.index}:{stage.device.name}",
                            stage.transfer_bytes,
                        )
                self.ledger.settle(
                    energy_joules=(
                        len(batch) * plan.energy_per_inference_joules
                    )
                )
            svc = self._service_for(size)
            svc._emit_batch_journey(batch, batch_id, dispatch_at)
            svc._publish_stages()
            admit_free_at = dispatch_at + interval

        # Keep ticking while completions are still in flight, so the
        # monitor sees the tail (SLO recovery events, final scale-down).
        while terminals:
            ticks_until(next_tick)

        end_s = max(
            last_finish, max(t for t, _ in billing),
            timeline[-1][0],
        )
        # End-of-run telemetry flush: the drain's terminal events must
        # reach the time-series history and get one last alert pass.
        record_timeseries_flush(end_s)
        if self.alerts is not None:
            self.alerts.tick(end_s)
        node_seconds = _integrate(billing, end_s)
        if self.ledger is not None:
            # Billed node-seconds (spin-up and drain intervals included)
            # settle onto tenants by their slot-time weight.
            self.ledger.settle(node_seconds=node_seconds)

        results.sort(key=lambda r: r.request_id)
        serve = ServeReport(
            results=tuple(results),
            batches=tuple(batches),
            config={
                **self.config.as_dict(),
                "capacity": self.capacity,
                "autoscale": {
                    "device": self.device.name,
                    "policy": policy.as_dict(),
                    "spin_up": self.spin_up.as_dict(),
                    "slos": [s.as_dict() for s in self.slos],
                },
            },
        )
        record_throughput(serve.throughput_images_per_s)
        return AutoscaleReport(
            serve=serve,
            decisions=tuple(decisions),
            timeline=tuple(timeline),
            node_seconds=node_seconds,
            end_s=end_s,
            policy=policy.as_dict(),
            spin_up=self.spin_up.as_dict(),
        )


def _integrate(billing: list[tuple[float, int]], end_s: float) -> float:
    """Node-seconds under the billed-capacity step function."""
    events = sorted(billing)
    total = 0.0
    active = 0
    prev = 0.0
    for at, delta in events:
        at = min(at, end_s)
        total += active * (at - prev)
        active += delta
        prev = at
    total += active * max(0.0, end_s - prev)
    return total
