"""Inference requests as the scheduler sees them.

A request is one image awaiting classification.  Payloads are deliberately
opaque to the scheduling layer — the virtual-time scheduler never touches
them, and the threaded service only hands them to its executor — so the
same policy code serves modeled FPGA runs and real CKKS execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class InferenceRequest:
    """One single-image inference request.

    ``arrival_s`` and ``deadline_s`` are absolute times on the scheduler's
    clock (virtual seconds for the simulator, ``time.monotonic`` seconds
    for the threaded service).  ``deadline_s=None`` means the request
    never expires.
    """

    request_id: int
    arrival_s: float = 0.0
    deadline_s: float | None = None
    payload: Any = field(default=None, compare=False)
    #: End-to-end trace ID carried through scheduling, batching and every
    #: pipeline stage; ``None`` means no caller-assigned trace (the
    #: schedulers then derive a stable ID from ``request_id``).
    trace_id: str | None = field(default=None, compare=False)
    #: The tenant key group this request's ciphertexts live under (see
    #: :mod:`repro.serve.tenants`).  Requests only share a slot batch
    #: with requests of the *same* key group — lanes of one ciphertext
    #: stream all decrypt under one key.  ``None`` is the legacy
    #: single-key universe: all ``None`` requests batch together.
    key_group: str | None = None

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s < self.arrival_s:
            raise ValueError("deadline_s must be >= arrival_s")

    def expired(self, now_s: float) -> bool:
        return self.deadline_s is not None and now_s > self.deadline_s

    @property
    def trace_ref(self) -> str:
        """The effective trace ID: assigned, or derived from the ID.

        Deriving (rather than mutating the frozen request) keeps every
        emitter — admission, batch, stage, response — agreeing on one ID
        without the traffic generators having to know about tracing.
        """
        if self.trace_id is not None:
            return self.trace_id
        return f"req-{self.request_id:06d}"
