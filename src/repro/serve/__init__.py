"""Throughput serving layer: slot-batched scheduling above the HE stack.

The paper optimizes single-image latency with LoLa packing (Sec. VII-A);
a deployed service facing "heavy traffic from millions of users" (the
ROADMAP north star) instead wants *amortized throughput*, which
CryptoNets-style slot batching delivers: the batched CryptoNets-MNIST
trace costs the same whether 1 or ``N/2`` images ride the slot lanes, so
a full batch divides one inference's latency by 4096.

This package provides the pieces between "a request arrived" and "the
accelerator ran a trace":

* :mod:`~repro.serve.request` — request/result records;
* :mod:`~repro.serve.tenants` — the multi-tenant key universe: tenant
  registry with stable key-group IDs, key rotation/eviction lifecycle
  events, and per-tenant cache shards with bounded quotas;
* :mod:`~repro.serve.cache`   — LRU design / context caches so repeated
  requests skip DSE and key generation (tenant-sharded variants for the
  per-key universe);
* :mod:`~repro.serve.costmodel` — per-mode cost facts derived from the
  DSE'd designs (LoLa single vs slot-batched);
* :mod:`~repro.serve.traffic` — deterministic arrival processes;
* :mod:`~repro.serve.scheduler` — virtual-time slot-batch scheduler
  (bounded queue, batch window, deadlines, LoLa degradation);
* :mod:`~repro.serve.service` — the same policy on real threads with a
  pluggable executor;
* :mod:`~repro.serve.records` — JSON round-trip of serve reports;
* :mod:`~repro.serve.slo`     — declarative SLOs (p99 latency, deadline
  misses, rejects) evaluated over sliding windows;
* :mod:`~repro.serve.bench`   — the latency-vs-throughput sweep behind
  ``repro bench-throughput`` and BENCH_serve.json.

See ``docs/serving.md`` for the design discussion.
"""

from .autoscale import (
    AutoscaleReport,
    AutoscalerConfig,
    FleetAutoscaler,
    ScaleDecision,
    SpinUpCostModel,
    held_fraction,
    p99_windows,
)
from .cache import (
    ContextCache,
    DesignCache,
    DesignKey,
    TenantContextCache,
    TenantDesignCache,
)
from .costmodel import ServingCostModel
from .costs import (
    METRICS as COST_METRICS,
    UNKEYED,
    CostLedger,
    CostReport,
    TenantCharges,
    split_exact,
)
from .records import BatchRecord, RequestResult, ServeReport
from .request import InferenceRequest
from .scheduler import SchedulerConfig, SlotBatchScheduler
from .service import BackpressureError, InferenceService, ServiceClosed
from .slo import (
    FLOOR_OBJECTIVES,
    OBJECTIVES,
    Slo,
    SloMonitor,
    SloStatus,
    default_slos,
    evaluate_report,
)
from .tenants import TIERS, Tenant, TenantRegistry, TenantShardedCache
from .traffic import (
    burst_arrivals,
    diurnal_arrivals,
    flash_crowd_arrivals,
    merge_arrivals,
    poisson_arrivals,
    tier_of_rank,
    uniform_arrivals,
    zipf_shares,
    zipf_tenant_arrivals,
)

__all__ = [
    "AutoscaleReport",
    "AutoscalerConfig",
    "BackpressureError",
    "BatchRecord",
    "COST_METRICS",
    "ContextCache",
    "CostLedger",
    "CostReport",
    "DesignCache",
    "DesignKey",
    "FleetAutoscaler",
    "InferenceRequest",
    "InferenceService",
    "RequestResult",
    "ScaleDecision",
    "SchedulerConfig",
    "ServeReport",
    "ServiceClosed",
    "ServingCostModel",
    "Slo",
    "SpinUpCostModel",
    "SloMonitor",
    "SloStatus",
    "SlotBatchScheduler",
    "Tenant",
    "TenantCharges",
    "TenantContextCache",
    "TenantDesignCache",
    "TenantRegistry",
    "TenantShardedCache",
    "TIERS",
    "UNKEYED",
    "burst_arrivals",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "FLOOR_OBJECTIVES",
    "OBJECTIVES",
    "default_slos",
    "evaluate_report",
    "held_fraction",
    "merge_arrivals",
    "p99_windows",
    "poisson_arrivals",
    "split_exact",
    "tier_of_rank",
    "uniform_arrivals",
    "zipf_shares",
    "zipf_tenant_arrivals",
]
