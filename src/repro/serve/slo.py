"""Declarative service-level objectives over sliding request windows.

An :class:`Slo` names one objective on the serving layer's terminal
request stream::

    Slo("p99 under 2s", objective="p99_latency_s", threshold=2.0)
    Slo("miss rate", objective="deadline_miss_rate", threshold=0.01)
    Slo("rejects", objective="reject_rate", threshold=0.05)

A :class:`SloMonitor` holds a set of SLOs and a bounded sliding window of
the most recent terminal requests (outcome + latency).  It is fed by
:meth:`observe` — the :class:`~repro.serve.service.InferenceService`
calls it from its worker pool, so the window is lock-protected — and
evaluated on demand with :meth:`evaluate`, which also publishes
``slo_value`` / ``slo_ok`` gauges and records a flight event on every
*transition* — ``slo_violation`` on ok → violated, ``slo_recovery`` on
violated → ok — so the flight ring shows when an objective broke and
when it healed, not a line per request in between.

:func:`evaluate_report` applies the same objectives to a finished
:class:`~repro.serve.records.ServeReport`, which is how the virtual-time
scheduler, the cluster router and the regression bench get SLO verdicts
without running a live monitor.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any

from ..obs.probes import record_flight
from ..obs.registry import REGISTRY
from .records import ServeReport

#: Objectives an :class:`Slo` may target.  Latency objectives are
#: "measured value must stay <= threshold seconds"; rate objectives are
#: fractions of the window in [0, 1]; ``noise_headroom_bits`` is the
#: one *floor* objective — the minimum analytic precision headroom over
#: the window must stay >= the threshold (fed per request from the
#: lineage tracker's final waterfall boundary).
OBJECTIVES = (
    "p50_latency_s",
    "p95_latency_s",
    "p99_latency_s",
    "deadline_miss_rate",
    "reject_rate",
    "noise_headroom_bits",
)

#: Objectives where *higher* measured values are better (``ok`` means
#: ``value >= threshold`` instead of ``<=``).
FLOOR_OBJECTIVES = frozenset({"noise_headroom_bits"})

_LATENCY_PERCENTILE = {
    "p50_latency_s": 50.0,
    "p95_latency_s": 95.0,
    "p99_latency_s": 99.0,
}


@dataclass(frozen=True)
class Slo:
    """One objective over a sliding window: ``measured <= threshold``
    (or ``>=`` for the floor objectives in :data:`FLOOR_OBJECTIVES`)."""

    name: str
    objective: str
    threshold: float
    #: Number of most-recent terminal requests the objective is measured
    #: over (the monitor keeps the max across its SLOs).
    window: int = 1000

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"choose from {OBJECTIVES}"
            )
        if self.threshold < 0:
            raise ValueError("threshold must be >= 0")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "objective": self.objective,
            "threshold": self.threshold,
            "window": self.window,
        }


@dataclass(frozen=True)
class SloStatus:
    """One SLO's verdict at evaluation time."""

    slo: Slo
    value: float
    ok: bool
    samples: int

    def as_dict(self) -> dict[str, Any]:
        return {
            **self.slo.as_dict(),
            "value": self.value,
            "ok": self.ok,
            "samples": self.samples,
        }


def default_slos(
    p99_latency_s: float = 30.0,
    deadline_miss_rate: float = 0.01,
    reject_rate: float = 0.05,
    window: int = 1000,
) -> tuple[Slo, ...]:
    """The stock serving SLO set (thresholds are per-deployment knobs)."""
    return (
        Slo("p99-latency", "p99_latency_s", p99_latency_s, window),
        Slo("deadline-misses", "deadline_miss_rate", deadline_miss_rate,
            window),
        Slo("queue-rejects", "reject_rate", reject_rate, window),
    )


def _percentile(ordered: list[float], p: float) -> float:
    if not ordered:
        return 0.0
    rank = (len(ordered) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _measure(
    slo: Slo, window: list[tuple[str, float | None, float | None]]
) -> tuple[float, int]:
    """``(value, samples)`` of one objective over a terminal-request window."""
    tail = window[-slo.window:]
    if slo.objective in _LATENCY_PERCENTILE:
        lats = sorted(
            lat for outcome, lat, _ in tail
            if lat is not None and outcome not in ("rejected", "expired")
        )
        return _percentile(lats, _LATENCY_PERCENTILE[slo.objective]), len(lats)
    if slo.objective == "noise_headroom_bits":
        # Worst headroom over the window; with no headroom samples the
        # floor objective is vacuously met (value pinned to the
        # threshold so the gauge stays finite and the verdict is ok).
        bits = [h for _, _, h in tail if h is not None]
        if not bits:
            return slo.threshold, 0
        return min(bits), len(bits)
    if not tail:
        return 0.0, 0
    if slo.objective == "deadline_miss_rate":
        bad = sum(1 for outcome, _, _ in tail if outcome == "expired")
    else:  # reject_rate
        bad = sum(1 for outcome, _, _ in tail if outcome == "rejected")
    return bad / len(tail), len(tail)


class SloMonitor:
    """Sliding-window SLO evaluation over a live terminal-request stream."""

    def __init__(self, slos: tuple[Slo, ...] | list[Slo] | None = None) -> None:
        self.slos = tuple(slos) if slos is not None else default_slos()
        if not self.slos:
            raise ValueError("monitor needs at least one SLO")
        span = max(slo.window for slo in self.slos)
        self._window: deque[tuple[str, float | None, float | None]] = deque(
            maxlen=span
        )
        self._lock = threading.Lock()
        self._violated: set[str] = set()

    def observe(
        self,
        outcome: str,
        latency_s: float | None = None,
        noise_headroom_bits: float | None = None,
    ) -> None:
        """Feed one terminal request (any worker thread).

        ``noise_headroom_bits`` is the request's analytic precision
        headroom (e.g. the lineage tracker's final boundary bits minus
        the deployment's precision floor); omit it for callers that do
        not track noise.
        """
        with self._lock:
            self._window.append((outcome, latency_s, noise_headroom_bits))

    def observe_report(self, report: ServeReport) -> None:
        """Feed every terminal request of a finished report, in ID order."""
        for result in report.results:
            self.observe(result.outcome, result.latency_s)

    def evaluate(self) -> list[SloStatus]:
        """Measure every SLO; publish gauges and violation transitions."""
        with self._lock:
            window = list(self._window)
        statuses = []
        for slo in self.slos:
            value, samples = _measure(slo, window)
            if slo.objective in FLOOR_OBJECTIVES:
                ok = value >= slo.threshold
            else:
                ok = value <= slo.threshold
            statuses.append(SloStatus(slo=slo, value=value, ok=ok,
                                      samples=samples))
            REGISTRY.gauge("slo_value", slo=slo.name).set(value)
            REGISTRY.gauge("slo_ok", slo=slo.name).set(1.0 if ok else 0.0)
            if not ok and slo.name not in self._violated:
                record_flight(
                    "slo_violation", slo=slo.name,
                    objective=slo.objective, value=value,
                    threshold=slo.threshold, samples=samples,
                )
            elif ok and slo.name in self._violated:
                # The mirror transition (violated -> ok) gets exactly one
                # event too — including when the violation clears exactly
                # at window close, i.e. the moment the last bad sample
                # ages out of the sliding window.
                record_flight(
                    "slo_recovery", slo=slo.name,
                    objective=slo.objective, value=value,
                    threshold=slo.threshold, samples=samples,
                )
            if ok:
                self._violated.discard(slo.name)
            else:
                self._violated.add(slo.name)
        return statuses

    def ok(self) -> bool:
        return all(status.ok for status in self.evaluate())


def evaluate_report(
    report: ServeReport, slos: tuple[Slo, ...] | list[Slo] | None = None
) -> list[SloStatus]:
    """Apply SLOs to a finished serving session (virtual or threaded)."""
    monitor = SloMonitor(slos)
    monitor.observe_report(report)
    return monitor.evaluate()
