"""Per-tenant cost attribution with an exact reconciliation invariant.

PR 8/9 already *compute* every raw economic number — batch occupancy,
serialized wire bytes per pipeline link, drain-aware node-seconds,
energy per inference, keygen and DSE work — but nothing *attributes*
them.  :class:`CostLedger` does: the serving loops charge each completed
request's key group its actual consumption, and fleet-level costs
(node-seconds, energy) are settled onto tenants in proportion to the
slot time they consumed.

The design constraint is the **reconciliation invariant**: per-tenant
charges must sum to the fleet totals *exactly*, not within a float
tolerance — an attribution bug that leaks cost must turn a CI boolean
red.  Exactness comes from doing all accounting in integer micro-units
(microseconds of slot/node time, microjoules, bytes, counts) and
splitting every shared quantity with a largest-remainder division, so
integer sums reconcile bit-for-bit no matter the addition order:

* **slot time** — a batch's accelerator occupancy, split across its
  lanes (one tenant per batch under key-aware batching; a cluster batch
  may mix groups and each lane carries its own share);
* **wire bytes** — the partitioner's serialized ciphertext bytes per
  dispatched batch, split across lanes; per-stage totals are kept too,
  and stage sums must equal tenant sums;
* **keygen / DSE points** — counted where they happen (a context-cache
  miss, a design scan); unattributed DSE work lands in a shared pool
  distributed like fleet costs;
* **node-seconds / energy** — autoscale billing integrals and
  ``plan.energy_per_inference_joules``, settled by slot-time weight
  (request-count weight when no slot time was charged).

``key_group=None`` requests charge the ``"(unkeyed)"`` bucket, so the
books always balance even for the legacy single-key universe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..obs.probes import record_tenant_cost
from .tenants import tenant_of_key_group

#: Tenant bucket for requests outside the key-group universe.
UNKEYED = "(unkeyed)"

#: Integer micro-units per second / joule.
_MICRO = 1_000_000

#: The charge axes a ledger tracks, in report order.
METRICS = (
    "slot_seconds",
    "wire_bytes",
    "keygen_count",
    "dse_points",
    "node_seconds",
    "energy_joules",
)


def _tenant_of(key_group: str | None) -> str:
    return UNKEYED if key_group is None else tenant_of_key_group(key_group)


def split_exact(total: int, weights: dict[str, float]) -> dict[str, int]:
    """Split integer ``total`` by ``weights`` with largest-remainder
    rounding: shares are ints and sum to ``total`` exactly.

    Zero/negative weight maps get an equal split; ties break by key so
    the split is deterministic.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    if not weights:
        return {}
    keys = sorted(weights)
    wsum = sum(max(0.0, weights[k]) for k in keys)
    if wsum <= 0:
        weights = {k: 1.0 for k in keys}
        wsum = float(len(keys))
    shares: dict[str, int] = {}
    remainders: list[tuple[float, str]] = []
    floor_sum = 0
    for k in keys:
        exact = total * max(0.0, weights[k]) / wsum
        floor = int(exact)
        shares[k] = floor
        floor_sum += floor
        remainders.append((-(exact - floor), k))
    remainders.sort()
    for _, k in remainders[: total - floor_sum]:
        shares[k] += 1
    return shares


@dataclass
class TenantCharges:
    """Integer-unit accumulators for one tenant."""

    tenant: str
    requests: int = 0
    slot_us: int = 0
    wire_bytes: int = 0
    keygen_count: int = 0
    dse_points: int = 0
    node_us: int = 0
    energy_uj: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "requests": self.requests,
            "slot_seconds": self.slot_us / _MICRO,
            "slot_us": self.slot_us,
            "wire_bytes": self.wire_bytes,
            "keygen_count": self.keygen_count,
            "dse_points": self.dse_points,
            "node_seconds": self.node_us / _MICRO,
            "node_us": self.node_us,
            "energy_joules": self.energy_uj / _MICRO,
            "energy_uj": self.energy_uj,
        }


class CostLedger:
    """Accumulate per-tenant charges; see the module docstring.

    Thread-compatibility note: the virtual-time loops are single-
    threaded, so the ledger takes no locks — install one ledger per
    run (the loops accept it as a constructor argument).
    """

    def __init__(self) -> None:
        self._tenants: dict[str, TenantCharges] = {}
        #: Fleet totals in the same integer units as the tenant rows.
        self._fleet = {
            "slot_us": 0, "wire_bytes": 0, "keygen_count": 0,
            "dse_points": 0, "node_us": 0, "energy_uj": 0,
        }
        #: Unattributed DSE points, distributed at report time.
        self._dse_pool = 0
        #: Per-stage wire bytes ("stage{index}:{device}" -> bytes).
        self._stage_wire: dict[str, int] = {}
        #: Pending fleet-level settlements awaiting distribution.
        self._unsettled_node_us = 0
        self._unsettled_energy_uj = 0

    # -- charging -------------------------------------------------------------

    def _charges(self, tenant: str) -> TenantCharges:
        row = self._tenants.get(tenant)
        if row is None:
            row = TenantCharges(tenant)
            self._tenants[tenant] = row
        return row

    def note_batch(
        self,
        key_groups: list[str | None],
        slot_seconds: float,
        wire_bytes: int = 0,
    ) -> None:
        """Charge one dispatched batch: its accelerator occupancy and
        wire bytes, split exactly across its lanes."""
        if not key_groups:
            return
        lanes = {f"lane{i}": 1.0 for i in range(len(key_groups))}
        slot_us = round(slot_seconds * _MICRO)
        slot_split = split_exact(slot_us, lanes)
        wire_split = split_exact(int(wire_bytes), lanes)
        for i, group in enumerate(key_groups):
            row = self._charges(_tenant_of(group))
            row.requests += 1
            row.slot_us += slot_split[f"lane{i}"]
            row.wire_bytes += wire_split[f"lane{i}"]
        self._fleet["slot_us"] += slot_us
        self._fleet["wire_bytes"] += int(wire_bytes)

    def note_request(
        self,
        key_group: str | None,
        slot_seconds: float,
        wire_bytes: int = 0,
    ) -> None:
        """Charge one request directly (a LoLa single, for instance)."""
        self.note_batch([key_group], slot_seconds, wire_bytes)

    def note_stage_wire(self, stage: str, wire_bytes: int) -> None:
        """Track the same wire bytes by pipeline stage (the dual view:
        stage sums must reconcile against tenant sums)."""
        self._stage_wire[stage] = self._stage_wire.get(stage, 0) \
            + int(wire_bytes)

    def note_keygen(self, key_group: str | None, count: int = 1) -> None:
        """Charge key-generation work (a context-cache miss)."""
        self._charges(_tenant_of(key_group)).keygen_count += count
        self._fleet["keygen_count"] += count

    def keygen_factory(
        self, key_group: str | None, factory: Callable[[], Any]
    ) -> Callable[[], Any]:
        """Wrap a context-cache miss factory so every actual build is
        charged — a cache hit never runs the factory, so warm tenants
        pay zero keygen, exactly like the spin-up cost model."""
        def charged() -> Any:
            self.note_keygen(key_group)
            return factory()
        return charged

    def note_dse(self, points: int, key_group: str | None = None) -> None:
        """Charge DSE scan work; with no key group it lands in the
        shared pool and is distributed like fleet costs."""
        if key_group is None:
            self._dse_pool += points
        else:
            self._charges(_tenant_of(key_group)).dse_points += points
        self._fleet["dse_points"] += points

    def settle(
        self, node_seconds: float = 0.0, energy_joules: float = 0.0
    ) -> None:
        """Queue fleet-level totals for distribution at report time.

        Distribution is deferred so charges that arrive *after* a
        settlement (another loop's batches) still shift the weights —
        the report distributes each total once over the final weights.
        """
        self._unsettled_node_us += round(node_seconds * _MICRO)
        self._unsettled_energy_uj += round(energy_joules * _MICRO)
        self._fleet["node_us"] = self._unsettled_node_us
        self._fleet["energy_uj"] = self._unsettled_energy_uj

    # -- reporting ------------------------------------------------------------

    def _weights(self) -> dict[str, float]:
        """Distribution weights: slot time, falling back to requests."""
        if not self._tenants:
            return {UNKEYED: 1.0}
        if any(row.slot_us for row in self._tenants.values()):
            return {t: float(r.slot_us) for t, r in self._tenants.items()}
        return {t: float(r.requests) for t, r in self._tenants.items()}

    def report(self) -> "CostReport":
        """Distribute pending fleet costs and snapshot the books.

        Non-mutating: calling twice (mid-run and at the end) yields
        consistent, fully-reconciled views each time.
        """
        weights = self._weights()
        node_split = split_exact(self._unsettled_node_us, weights)
        energy_split = split_exact(self._unsettled_energy_uj, weights)
        dse_split = split_exact(self._dse_pool, weights)
        rows: list[TenantCharges] = []
        for tenant in sorted(set(self._tenants) | set(weights)):
            base = self._tenants.get(tenant, TenantCharges(tenant))
            rows.append(TenantCharges(
                tenant=tenant,
                requests=base.requests,
                slot_us=base.slot_us,
                wire_bytes=base.wire_bytes,
                keygen_count=base.keygen_count,
                dse_points=base.dse_points + dse_split.get(tenant, 0),
                node_us=base.node_us + node_split.get(tenant, 0),
                energy_uj=base.energy_uj + energy_split.get(tenant, 0),
            ))
        return CostReport(
            tenants=tuple(rows),
            fleet=dict(self._fleet),
            stage_wire=dict(self._stage_wire),
        )

    def publish(self) -> None:
        """Publish per-tenant ``cost_*`` gauges to the registry.

        These series are per-tenant (high cardinality by design); small
        exports scope them out with the OpenMetrics prefix filters.
        """
        for row in self.report().tenants:
            record_tenant_cost(
                row.tenant,
                requests=row.requests,
                slot_seconds=row.slot_us / _MICRO,
                wire_bytes=row.wire_bytes,
                keygen_count=row.keygen_count,
                dse_points=row.dse_points,
                node_seconds=row.node_us / _MICRO,
                energy_joules=row.energy_uj / _MICRO,
            )


@dataclass(frozen=True)
class CostReport:
    """The settled books: per-tenant rows, fleet totals, stage duals."""

    tenants: tuple[TenantCharges, ...]
    fleet: dict[str, int] = field(default_factory=dict)
    stage_wire: dict[str, int] = field(default_factory=dict)

    def reconciliation(self) -> dict[str, bool]:
        """Exact integer equality of tenant sums against fleet totals.

        ``wire_stage`` additionally checks the per-stage dual (skipped
        as vacuously true when no stage charges were recorded — the
        single-board scheduler has no pipeline links).
        """
        sums = {
            "slot_us": sum(r.slot_us for r in self.tenants),
            "wire_bytes": sum(r.wire_bytes for r in self.tenants),
            "keygen_count": sum(r.keygen_count for r in self.tenants),
            "dse_points": sum(r.dse_points for r in self.tenants),
            "node_us": sum(r.node_us for r in self.tenants),
            "energy_uj": sum(r.energy_uj for r in self.tenants),
        }
        out = {
            "slot_seconds": sums["slot_us"] == self.fleet["slot_us"],
            "wire_bytes": sums["wire_bytes"] == self.fleet["wire_bytes"],
            "keygen_count":
                sums["keygen_count"] == self.fleet["keygen_count"],
            "dse_points": sums["dse_points"] == self.fleet["dse_points"],
            "node_seconds": sums["node_us"] == self.fleet["node_us"],
            "energy_joules": sums["energy_uj"] == self.fleet["energy_uj"],
        }
        if self.stage_wire:
            out["wire_stage"] = (
                sum(self.stage_wire.values()) == self.fleet["wire_bytes"]
            )
        return out

    @property
    def reconciled(self) -> bool:
        return all(self.reconciliation().values())

    def totals(self) -> dict[str, float]:
        """Fleet totals in human units."""
        return {
            "requests": sum(r.requests for r in self.tenants),
            "slot_seconds": self.fleet["slot_us"] / _MICRO,
            "wire_bytes": self.fleet["wire_bytes"],
            "keygen_count": self.fleet["keygen_count"],
            "dse_points": self.fleet["dse_points"],
            "node_seconds": self.fleet["node_us"] / _MICRO,
            "energy_joules": self.fleet["energy_uj"] / _MICRO,
        }

    def share(self, tenant: str, metric: str = "node_seconds") -> float:
        """One tenant's fraction of a fleet total (0.0 on empty books)."""
        unit = {"slot_seconds": "slot_us", "node_seconds": "node_us",
                "energy_joules": "energy_uj"}.get(metric, metric)
        total = self.fleet.get(unit, 0)
        if not total:
            return 0.0
        row = next((r for r in self.tenants if r.tenant == tenant), None)
        return getattr(row, unit) / total if row is not None else 0.0

    def top_share(self, metric: str = "node_seconds") -> float:
        """The largest single-tenant share of a fleet total."""
        return max(
            (self.share(r.tenant, metric) for r in self.tenants),
            default=0.0,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "tenants": [r.as_dict() for r in self.tenants],
            "fleet": dict(self.fleet),
            "totals": self.totals(),
            "stage_wire": dict(self.stage_wire),
            "reconciliation": self.reconciliation(),
            "reconciled": self.reconciled,
            "top_shares": {
                m: self.top_share(m)
                for m in ("slot_seconds", "node_seconds", "energy_joules",
                          "wire_bytes")
            },
        }
