"""JSON-ready records of what the serving layer did.

Every record round-trips through ``to_dict``/``from_dict`` (exercised in
the serializer tests) so a bench run, a CI artifact, or a later analysis
session can reload a full serving session without re-running it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class RequestResult:
    """Terminal record of one request.

    ``outcome`` is one of ``"batched"`` / ``"lola"`` / ``"cluster"``
    (completed in that mode), ``"expired"`` (deadline passed before
    dispatch) or ``"rejected"`` (bounded admission queue was full).
    ``start_s`` / ``finish_s`` / ``batch_id`` are ``None`` unless the
    request completed.  ``key_group`` carries the tenant key identity
    through to per-tenant reporting (``None`` = single-key universe).
    """

    request_id: int
    outcome: str
    arrival_s: float
    start_s: float | None = None
    finish_s: float | None = None
    batch_id: int | None = None
    key_group: str | None = None

    OUTCOMES = ("batched", "lola", "cluster", "expired", "rejected")

    def __post_init__(self) -> None:
        if self.outcome not in self.OUTCOMES:
            raise ValueError(f"unknown outcome {self.outcome!r}")

    @property
    def completed(self) -> bool:
        return self.outcome in ("batched", "lola", "cluster")

    @property
    def latency_s(self) -> float | None:
        """Arrival-to-completion latency; None unless completed."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "outcome": self.outcome,
            "arrival_s": self.arrival_s,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "batch_id": self.batch_id,
            "key_group": self.key_group,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RequestResult":
        return cls(
            request_id=int(data["request_id"]),
            outcome=str(data["outcome"]),
            arrival_s=float(data["arrival_s"]),
            start_s=None if data.get("start_s") is None
            else float(data["start_s"]),
            finish_s=None if data.get("finish_s") is None
            else float(data["finish_s"]),
            batch_id=None if data.get("batch_id") is None
            else int(data["batch_id"]),
            key_group=None if data.get("key_group") is None
            else str(data["key_group"]),
        )


@dataclass(frozen=True)
class BatchRecord:
    """One accelerator dispatch: a slot batch or a LoLa degradation run."""

    batch_id: int
    mode: str  # "batched" | "lola" | "cluster"
    lanes: int
    capacity: int
    start_s: float
    finish_s: float
    #: The single key group every lane of this batch belongs to (the
    #: cross-tenant isolation invariant: a batch never mixes keys).
    key_group: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("batched", "lola", "cluster"):
            raise ValueError(f"unknown batch mode {self.mode!r}")
        if not 1 <= self.lanes <= max(1, self.capacity):
            raise ValueError("lanes must be in [1, capacity]")

    @property
    def fill_ratio(self) -> float:
        return self.lanes / self.capacity if self.capacity else 0.0

    @property
    def duration_s(self) -> float:
        return self.finish_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "batch_id": self.batch_id,
            "mode": self.mode,
            "lanes": self.lanes,
            "capacity": self.capacity,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "key_group": self.key_group,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BatchRecord":
        return cls(
            batch_id=int(data["batch_id"]),
            mode=str(data["mode"]),
            lanes=int(data["lanes"]),
            capacity=int(data["capacity"]),
            start_s=float(data["start_s"]),
            finish_s=float(data["finish_s"]),
            key_group=None if data.get("key_group") is None
            else str(data["key_group"]),
        )


def _percentile(sorted_values: list[float], p: float) -> float:
    """Exact nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      round(p / 100 * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class ServeReport:
    """Aggregate outcome of one serving session."""

    results: tuple[RequestResult, ...]
    batches: tuple[BatchRecord, ...]
    config: dict[str, Any]

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.completed)

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.results if r.outcome == "rejected")

    @property
    def expired(self) -> int:
        return sum(1 for r in self.results if r.outcome == "expired")

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        finishes = [r.finish_s for r in self.results if r.finish_s is not None]
        if not finishes:
            return 0.0
        start = min(r.arrival_s for r in self.results)
        return max(finishes) - start

    @property
    def throughput_images_per_s(self) -> float:
        """Amortized completed images per second of makespan."""
        span = self.makespan_s
        return self.completed / span if span > 0 else 0.0

    @property
    def mean_fill_ratio(self) -> float:
        slot_batches = [
            b for b in self.batches if b.mode in ("batched", "cluster")
        ]
        if not slot_batches:
            return 0.0
        return sum(b.fill_ratio for b in slot_batches) / len(slot_batches)

    def latency_percentiles(self) -> dict[str, float]:
        lats = sorted(
            r.latency_s for r in self.results if r.latency_s is not None
        )
        return {
            "p50": _percentile(lats, 50),
            "p95": _percentile(lats, 95),
            "p99": _percentile(lats, 99),
            "max": lats[-1] if lats else 0.0,
        }

    @property
    def key_groups(self) -> tuple[str, ...]:
        """Distinct key groups seen, sorted (``None`` is excluded)."""
        return tuple(sorted({
            r.key_group for r in self.results if r.key_group is not None
        }))

    def isolation_ok(self) -> bool:
        """The cross-tenant invariant: no batch ever mixed key groups."""
        batch_groups: dict[int, set[str | None]] = {}
        for r in self.results:
            if r.batch_id is not None:
                batch_groups.setdefault(r.batch_id, set()).add(r.key_group)
        return all(len(groups) == 1 for groups in batch_groups.values())

    def per_key_group(self) -> dict[str, dict[str, Any]]:
        """Per-tenant-key serving summary (completion counts, p50/p99)."""
        by_group: dict[str, list[RequestResult]] = {}
        for r in self.results:
            if r.key_group is not None:
                by_group.setdefault(r.key_group, []).append(r)
        out: dict[str, dict[str, Any]] = {}
        for group in sorted(by_group):
            rs = by_group[group]
            lats = sorted(
                r.latency_s for r in rs if r.latency_s is not None
            )
            out[group] = {
                "requests": len(rs),
                "completed": sum(1 for r in rs if r.completed),
                "rejected": sum(1 for r in rs if r.outcome == "rejected"),
                "expired": sum(1 for r in rs if r.outcome == "expired"),
                "latency_p50_s": _percentile(lats, 50),
                "latency_p99_s": _percentile(lats, 99),
            }
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config,
            "summary": {
                "completed": self.completed,
                "rejected": self.rejected,
                "expired": self.expired,
                "makespan_s": self.makespan_s,
                "throughput_images_per_s": self.throughput_images_per_s,
                "mean_fill_ratio": self.mean_fill_ratio,
                "latency": self.latency_percentiles(),
                "key_groups": len(self.key_groups),
                "isolation_ok": self.isolation_ok(),
            },
            "results": [r.to_dict() for r in self.results],
            "batches": [b.to_dict() for b in self.batches],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeReport":
        return cls(
            results=tuple(
                RequestResult.from_dict(r) for r in data["results"]
            ),
            batches=tuple(
                BatchRecord.from_dict(b) for b in data["batches"]
            ),
            config=dict(data["config"]),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ServeReport":
        return cls.from_dict(json.loads(text))
