"""The slot-batching policy on real threads.

Where :mod:`repro.serve.scheduler` *simulates* the policy in virtual time,
:class:`InferenceService` runs it live: callers ``submit()`` payloads and
get ``concurrent.futures.Future`` handles; a dispatcher thread coalesces
the bounded admission queue into slot batches (full batch, or batch
window expired); a worker pool executes batches through a pluggable
executor — a modeled sleep, or a real CKKS inference against a cached,
pre-provisioned context.

Guarantees:

* **backpressure** — a full admission queue makes ``submit`` raise
  :class:`BackpressureError` instead of buffering unboundedly;
* **deadlines** — a request still queued past its deadline gets
  ``TimeoutError`` set on its future and never occupies a lane;
* **degradation** — batches smaller than the cost crossover run in
  unbatched LoLa mode (the executor is told which mode to use);
* **clean shutdown** — ``close()`` drains the queue, runs the final
  partial batch, and joins all threads; late submits raise
  :class:`ServiceClosed`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from ..obs.flight import FLIGHT
from ..obs.probes import (
    record_batch_dispatch,
    record_flight,
    record_queue_depth,
    record_request_latency,
    record_request_outcome,
)
from ..obs.tracectx import new_trace_id, trace_context
from ..obs.tracing import trace_span
from .costmodel import ServingCostModel
from .records import BatchRecord, RequestResult, ServeReport
from .request import InferenceRequest
from .slo import SloMonitor

#: Executes one dispatched batch: receives the requests and the chosen
#: mode ("batched" | "lola"), returns one result per request, in order.
BatchExecutor = Callable[[list[InferenceRequest], str], list[Any]]


class ServiceClosed(RuntimeError):
    """Raised by ``submit`` after ``close()``."""


class BackpressureError(RuntimeError):
    """Raised by ``submit`` when the admission queue is full."""


class _Entry:
    __slots__ = ("request", "future")

    def __init__(self, request: InferenceRequest, future: Future) -> None:
        self.request = request
        self.future = future


class InferenceService:
    """Threaded slot-batching frontend around a batch executor."""

    def __init__(
        self,
        executor: BatchExecutor,
        capacity: int,
        batch_window_s: float = 0.05,
        queue_capacity: int = 256,
        workers: int = 1,
        cost_model: ServingCostModel | None = None,
        degrade_to_lola: bool = True,
        slo_monitor: SloMonitor | None = None,
        flight_dump_path: Any = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.executor = executor
        self.capacity = capacity
        self.batch_window_s = batch_window_s
        self.queue_capacity = queue_capacity
        self.degrade_to_lola = degrade_to_lola
        #: Optional SLO monitor fed with every terminal request; read it
        #: back with :meth:`slo_status`.
        self.slo_monitor = slo_monitor
        #: When set, a failed batch dumps the flight-recorder window here
        #: (JSONL) before the exception is set on the futures.
        self.flight_dump_path = flight_dump_path
        self._crossover = 1
        if degrade_to_lola and cost_model is not None:
            self._crossover = min(cost_model.crossover_lanes(), capacity)
        self._cond = threading.Condition()
        self._queue: list[_Entry] = []
        self._closed = False
        self._next_id = 0
        self._start = time.monotonic()
        self._results: list[RequestResult] = []
        self._batches: list[BatchRecord] = []
        self._record_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="serve-worker"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- client API -----------------------------------------------------------

    def submit(
        self,
        payload: Any = None,
        deadline_s: float | None = None,
        trace_id: str | None = None,
        key_group: str | None = None,
    ) -> Future:
        """Enqueue one request; ``deadline_s`` is relative to now.

        ``trace_id`` names the request's end-to-end trace (a fresh ID is
        minted when omitted); spans the workers open while executing the
        batch carry it, so the exported trace connects this request's
        queue wait and execution across threads.  ``key_group`` names the
        tenant key universe the payload is encrypted under (see
        :mod:`repro.serve.tenants`); the dispatcher only batches
        same-key-group requests together.
        """
        now = self._now()
        trace_id = trace_id if trace_id is not None else new_trace_id()
        with self._cond:
            if self._closed:
                raise ServiceClosed("service is closed")
            if len(self._queue) >= self.queue_capacity:
                self._record(RequestResult(
                    request_id=self._next_id, outcome="rejected",
                    arrival_s=now, key_group=key_group,
                ))
                self._next_id += 1
                record_request_outcome(
                    "rejected", request_id=self._next_id - 1,
                    trace_id=trace_id, queue="service",
                )
                # Backpressure must be visible in dump-on-error windows:
                # mirror the "admit" flight event for the shed request.
                record_flight(
                    "reject", request_id=self._next_id - 1,
                    trace_id=trace_id, queue="service",
                    depth=len(self._queue), key_group=key_group,
                )
                self._observe_slo("rejected")
                raise BackpressureError(
                    f"admission queue full ({self.queue_capacity})"
                )
            request = InferenceRequest(
                request_id=self._next_id,
                arrival_s=now,
                deadline_s=None if deadline_s is None else now + deadline_s,
                payload=payload,
                trace_id=trace_id,
                key_group=key_group,
            )
            self._next_id += 1
            future: Future = Future()
            self._queue.append(_Entry(request, future))
            record_queue_depth(len(self._queue))
            record_flight(
                "admit", request_id=request.request_id, trace_id=trace_id,
                queue="service", depth=len(self._queue),
                key_group=key_group,
            )
            self._cond.notify_all()
        return future

    def close(self, drain: bool = True) -> None:
        """Stop accepting work; optionally run what is already queued."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if not drain:
                for entry in self._queue:
                    entry.future.cancel()
                    self._record(RequestResult(
                        request_id=entry.request.request_id,
                        outcome="rejected",
                        arrival_s=entry.request.arrival_s,
                        key_group=entry.request.key_group,
                    ))
                self._queue.clear()
            self._cond.notify_all()
        self._dispatcher.join()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def report(self) -> ServeReport:
        """Everything served so far, as the simulator would report it."""
        with self._record_lock:
            results = tuple(sorted(
                self._results, key=lambda r: r.request_id
            ))
            batches = tuple(self._batches)
        return ServeReport(
            results=results,
            batches=batches,
            config={
                "batch_window_s": self.batch_window_s,
                "max_lanes": self.capacity,
                "queue_capacity": self.queue_capacity,
                "degrade_to_lola": self.degrade_to_lola,
                "capacity": self.capacity,
            },
        )

    # -- internals ------------------------------------------------------------

    def _now(self) -> float:
        return time.monotonic() - self._start

    def _record(self, result: RequestResult) -> None:
        with self._record_lock:
            self._results.append(result)

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            if batch:
                self._pool.submit(self._run_batch, batch)

    def _full_group_head(self) -> _Entry | None:
        """Oldest entry of the first key group filling a batch (cond held).

        Returning the entry keeps ``key_group=None`` — the valid legacy
        single-key group — distinguishable from "no group is full".
        """
        counts: dict[str | None, int] = {}
        for entry in self._queue:
            group = entry.request.key_group
            counts[group] = counts.get(group, 0) + 1
        for entry in self._queue:
            if counts[entry.request.key_group] >= self.capacity:
                return entry
        return None

    def _collect_batch(self) -> list[_Entry] | None:
        """Block until a batch is due; None means shut down."""
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait()
            # Wait for key-mates until a group fills a batch or the oldest
            # request's window closes (rare keys age out rather than
            # stranding behind hot ones).
            chosen: _Entry | None = None
            while True:
                if self._closed:
                    chosen = self._queue[0] if self._queue else None
                    break
                chosen = self._full_group_head()
                if chosen is not None:
                    break
                oldest = self._queue[0].request
                remaining = (
                    oldest.arrival_s + self.batch_window_s - self._now()
                )
                if remaining <= 0:
                    chosen = self._queue[0]
                    break
                self._cond.wait(timeout=remaining)
                if not self._queue:
                    # Everything expired or was drained elsewhere.
                    return self._collect_batch_restart()
            group = chosen.request.key_group if chosen is not None else None
            now = self._now()
            batch: list[_Entry] = []
            keep: list[_Entry] = []
            for entry in self._queue:
                if entry.request.expired(now):
                    entry.future.set_exception(TimeoutError(
                        f"request {entry.request.request_id} expired "
                        f"before dispatch"
                    ))
                    self._record(RequestResult(
                        request_id=entry.request.request_id,
                        outcome="expired",
                        arrival_s=entry.request.arrival_s,
                        key_group=entry.request.key_group,
                    ))
                    record_request_outcome(
                        "expired", request_id=entry.request.request_id,
                        trace_id=entry.request.trace_ref, queue="service",
                    )
                    self._observe_slo("expired")
                elif (entry.request.key_group == group
                      and len(batch) < self.capacity):
                    batch.append(entry)
                else:
                    keep.append(entry)
            self._queue = keep
            record_queue_depth(len(self._queue))
            # An all-expired group returns an empty batch; the dispatch
            # loop re-enters immediately and picks the next group.
            return batch

    def _collect_batch_restart(self) -> list[_Entry] | None:
        # Re-enter without holding the lock twice (cond is re-entrant for
        # the same acquisition, but recursion keeps the state machine flat).
        return []

    def _run_batch(self, batch: list[_Entry]) -> None:
        k = len(batch)
        mode = "lola" if k < self._crossover else "batched"
        start = self._now()
        record_batch_dispatch(k, self.capacity, mode)
        requests = [entry.request for entry in batch]
        trace_ids = [r.trace_ref for r in requests[:64]]
        key_group = requests[0].key_group
        try:
            # The batch's lead trace context covers the worker-thread
            # span, so every event it produces is tagged and filterable.
            with trace_context(requests[0].trace_ref), trace_span(
                "serve.batch_execute", category="serve",
                lanes=k, mode=mode, trace_ids=trace_ids,
            ):
                outputs = self.executor(requests, mode)
            if len(outputs) != k:
                raise RuntimeError(
                    f"executor returned {len(outputs)} results for "
                    f"{k} requests"
                )
        except Exception as exc:
            finish = self._now()
            record_flight(
                "batch_error", lanes=k, mode=mode, error=repr(exc),
                trace_ids=trace_ids,
            )
            if self.flight_dump_path is not None:
                try:
                    FLIGHT.dump_jsonl(self.flight_dump_path)
                except OSError:
                    pass  # post-mortem must not mask the batch failure
            for entry in batch:
                entry.future.set_exception(exc)
                self._record(RequestResult(
                    request_id=entry.request.request_id, outcome="expired",
                    arrival_s=entry.request.arrival_s,
                    key_group=entry.request.key_group,
                ))
                record_request_outcome(
                    "expired", request_id=entry.request.request_id,
                    trace_id=entry.request.trace_ref, queue="service",
                )
                self._observe_slo("expired")
            return
        finish = self._now()
        with self._record_lock:
            batch_id = len(self._batches)
            self._batches.append(BatchRecord(
                batch_id=batch_id, mode=mode, lanes=k,
                capacity=self.capacity, start_s=start, finish_s=finish,
                key_group=key_group,
            ))
        for entry, output in zip(batch, outputs):
            self._record(RequestResult(
                request_id=entry.request.request_id, outcome=mode,
                arrival_s=entry.request.arrival_s, start_s=start,
                finish_s=finish, batch_id=batch_id,
                key_group=entry.request.key_group,
            ))
            record_request_outcome(mode)
            latency = finish - entry.request.arrival_s
            record_request_latency(latency, mode)
            self._observe_slo(mode, latency)
            entry.future.set_result(output)

    def _observe_slo(
        self, outcome: str, latency_s: float | None = None
    ) -> None:
        if self.slo_monitor is not None:
            self.slo_monitor.observe(outcome, latency_s)

    def slo_status(self):
        """Evaluate the attached SLO monitor (``None`` when unattached)."""
        if self.slo_monitor is None:
            return None
        return self.slo_monitor.evaluate()
