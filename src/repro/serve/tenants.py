"""Multi-tenant key universe: the registry behind per-key serving.

A real HE-CNN service has no single key universe: every user encrypts
under their own CKKS key, so two requests can share an accelerator batch
*only* when they share key material — slot lanes of one ciphertext
stream are all decrypted by one secret key.  This module provides the
identity layer the serving stack batches, caches and accounts by:

* :class:`TenantRegistry` — tenants with a stable **key-group ID**
  (``"{tenant_id}:k{epoch}"``).  The key group is the unit of batching
  and cache sharding; rotating a tenant's key bumps the epoch, so stale
  contexts can never be confused with fresh ones.  Registration,
  rotation and eviction all land in the flight recorder
  (``tenant_registered`` / ``key_rotation`` / ``tenant_evicted``), so a
  post-mortem window shows the key lifecycle around a failure.
* :class:`TenantShardedCache` — per-tenant :class:`~repro.caching
  .LruCache` shards with a **bounded per-tenant quota** and a bounded
  tenant population: the least-recently-active tenant's whole shard is
  evicted when a new tenant would exceed ``max_tenants`` (recorded as a
  ``tenant_evicted`` flight event with the entry count dropped).  All
  shards publish under one cache label, so
  ``cache_events_total{cache="context", event=...}`` aggregates across
  tenants — the warm-rerun acceptance check reads exactly that counter.

Tenants carry a **tier** (``TIERS``): the traffic model maps zipf rank
onto tiers (few hot tenants, a long tail) and the benchmark holds each
tier to its own SLO set.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..caching import CacheStats, LruCache
from ..obs import config as obs_config
from ..obs.probes import record_flight, record_tenant_event
from ..obs.registry import REGISTRY

#: Tenant service tiers, hottest first.  The zipf traffic model assigns
#: them by rank share; SLO thresholds are per-tier deployment knobs.
TIERS = ("hot", "warm", "cold")


@dataclass(frozen=True)
class Tenant:
    """One tenant's identity snapshot at a point in the key lifecycle."""

    tenant_id: str
    tier: str = "cold"
    key_epoch: int = 0

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r}; choose from {TIERS}")
        if self.key_epoch < 0:
            raise ValueError("key_epoch must be >= 0")

    @property
    def key_group(self) -> str:
        """The batching/caching identity: tenant plus key epoch."""
        return f"{self.tenant_id}:k{self.key_epoch}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "tenant_id": self.tenant_id,
            "tier": self.tier,
            "key_epoch": self.key_epoch,
            "key_group": self.key_group,
        }


def tenant_of_key_group(key_group: str) -> str:
    """The tenant ID a key-group string belongs to."""
    return key_group.rsplit(":k", 1)[0]


class TenantRegistry:
    """Thread-safe tenant directory with key-rotation lifecycle events."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def register(self, tenant_id: str, tier: str = "cold") -> Tenant:
        """Idempotently register a tenant; returns its current snapshot."""
        with self._lock:
            existing = self._tenants.get(tenant_id)
            if existing is not None:
                return existing
            tenant = Tenant(tenant_id=tenant_id, tier=tier)
            self._tenants[tenant_id] = tenant
        record_flight(
            "tenant_registered", tenant=tenant_id, tier=tier,
            key_group=tenant.key_group,
        )
        record_tenant_event("registered")
        return tenant

    def get(self, tenant_id: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[tenant_id]
            except KeyError:
                raise KeyError(f"unknown tenant {tenant_id!r}") from None

    def key_group(self, tenant_id: str) -> str:
        """The tenant's current key group (auto-registers cold tenants)."""
        with self._lock:
            tenant = self._tenants.get(tenant_id)
        if tenant is None:
            tenant = self.register(tenant_id)
        return tenant.key_group

    def rotate_key(self, tenant_id: str) -> Tenant:
        """Bump the tenant's key epoch; old contexts are now stale.

        Returns the post-rotation snapshot.  Callers owning caches keyed
        by key group should also :meth:`TenantShardedCache.invalidate`
        the old group — the epoch bump guarantees no *new* lookup can
        hit stale material either way.
        """
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                raise KeyError(f"unknown tenant {tenant_id!r}")
            rotated = Tenant(
                tenant_id=tenant_id, tier=tenant.tier,
                key_epoch=tenant.key_epoch + 1,
            )
            self._tenants[tenant_id] = rotated
        record_flight(
            "key_rotation", tenant=tenant_id,
            old_key_group=tenant.key_group, new_key_group=rotated.key_group,
            key_epoch=rotated.key_epoch,
        )
        record_tenant_event("key_rotation")
        return rotated

    def evict(self, tenant_id: str) -> bool:
        """Forget a tenant (deprovisioning); True when it existed."""
        with self._lock:
            tenant = self._tenants.pop(tenant_id, None)
        if tenant is None:
            return False
        record_flight(
            "tenant_evicted", tenant=tenant_id, source="registry",
            key_group=tenant.key_group,
        )
        record_tenant_event("evicted")
        return True

    def tenants(self) -> list[Tenant]:
        with self._lock:
            return list(self._tenants.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __contains__(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def as_dict(self) -> dict[str, Any]:
        return {
            "tenants": [t.as_dict() for t in self.tenants()],
            "count": len(self),
        }


class TenantShardedCache:
    """Per-tenant LRU shards with bounded quotas, under one cache label.

    Layered on :class:`~repro.caching.LruCache` twice over: each tenant
    owns a shard bounded by ``per_tenant_capacity`` (one tenant cannot
    squeeze every other tenant's warm key material out), and the shard
    directory itself is LRU-bounded by ``max_tenants`` (the long tail of
    a zipf population cannot grow memory without bound — the coldest
    tenant's shard is dropped whole, with a ``tenant_evicted`` flight
    event naming it and the entry count lost).

    Shards share one metric label (``cache=<name>``) so hit/miss/eviction
    counters aggregate across tenants; the ``cache_size`` and
    ``cache_hit_ratio`` gauges are republished with the *total* entry
    count and the population-wide hit rate after every access.
    """

    def __init__(
        self,
        name: str,
        per_tenant_capacity: int = 8,
        max_tenants: int = 64,
        flight: bool = False,
    ) -> None:
        if per_tenant_capacity < 1:
            raise ValueError("per_tenant_capacity must be >= 1")
        if max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        self.name = name
        self.per_tenant_capacity = per_tenant_capacity
        self.max_tenants = max_tenants
        self.flight = flight
        self._shards: dict[str, LruCache] = {}
        self._order: list[str] = []  # LRU order, least recent first
        self._lock = threading.Lock()
        self._tenant_evictions = 0

    # -- shard directory ------------------------------------------------------

    def shard(self, key_group: str) -> LruCache:
        """The tenant's shard, created (and LRU-touched) on demand."""
        evicted: list[tuple[str, int]] = []
        with self._lock:
            cache = self._shards.get(key_group)
            if cache is None:
                cache = LruCache(
                    self.per_tenant_capacity, name=self.name,
                    flight=self.flight,
                )
                self._shards[key_group] = cache
                self._order.append(key_group)
                while len(self._shards) > self.max_tenants:
                    coldest = self._order.pop(0)
                    dropped = self._shards.pop(coldest)
                    evicted.append((coldest, len(dropped)))
                    self._tenant_evictions += 1
            else:
                self._order.remove(key_group)
                self._order.append(key_group)
        for coldest, entries in evicted:
            record_flight(
                "tenant_evicted", tenant=tenant_of_key_group(coldest),
                key_group=coldest, cache=self.name, entries=entries,
                source="cache",
            )
            record_tenant_event("evicted")
        return cache

    def get_or_create(
        self, key_group: str, key: Hashable, factory: Callable[[], Any]
    ) -> Any:
        value = self.shard(key_group).get_or_create(key, factory)
        self._publish_total()
        return value

    def invalidate(self, key_group: str) -> int:
        """Drop one tenant's shard (key rotation); returns entries lost."""
        with self._lock:
            cache = self._shards.pop(key_group, None)
            if cache is None:
                return 0
            self._order.remove(key_group)
        entries = len(cache)
        cache.clear()
        record_flight(
            "tenant_invalidated", tenant=tenant_of_key_group(key_group),
            key_group=key_group, cache=self.name, entries=entries,
        )
        self._publish_total()
        return entries

    def clear(self) -> None:
        with self._lock:
            shards = list(self._shards.values())
            self._shards.clear()
            self._order.clear()
        for cache in shards:
            cache.clear()
        self._publish_total()

    # -- accounting -----------------------------------------------------------

    def _publish_total(self) -> None:
        if obs_config.enabled():
            REGISTRY.gauge("cache_size", cache=self.name).set(len(self))
            REGISTRY.gauge("cache_tenants", cache=self.name).set(
                self.tenant_count()
            )
            # Individual shards publish their own per-shard ratio under the
            # shared label as they are touched; republish the aggregate so
            # the gauge always lands on the population-wide hit rate (what
            # the autoscaler's spin-up cost model reads).
            REGISTRY.gauge("cache_hit_ratio", cache=self.name).set(
                self.stats().hit_rate
            )

    def tenant_count(self) -> int:
        with self._lock:
            return len(self._shards)

    def tenants(self) -> list[str]:
        """Key groups with live shards, least recently used first."""
        with self._lock:
            return list(self._order)

    def __len__(self) -> int:
        """Total entries across every shard."""
        with self._lock:
            shards = list(self._shards.values())
        return sum(len(s) for s in shards)

    @property
    def tenant_evictions(self) -> int:
        with self._lock:
            return self._tenant_evictions

    def stats(self) -> CacheStats:
        """Aggregate stats across all live shards (one cache label)."""
        with self._lock:
            shards = list(self._shards.values())
            tenant_evictions = self._tenant_evictions
        hits = misses = evictions = size = 0
        for shard in shards:
            s = shard.stats()
            hits += s.hits
            misses += s.misses
            evictions += s.evictions
            size += s.size
        return CacheStats(
            name=self.name,
            capacity=self.per_tenant_capacity * self.max_tenants,
            size=size,
            hits=hits,
            misses=misses,
            evictions=evictions + tenant_evictions,
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            **self.stats().as_dict(),
            "per_tenant_capacity": self.per_tenant_capacity,
            "max_tenants": self.max_tenants,
            "tenant_count": self.tenant_count(),
            "tenant_evictions": self.tenant_evictions,
        }
