"""The latency-vs-throughput sweep behind ``repro bench-throughput``.

For a fixed arrival stream, sweep the batch window and record, per
window, the amortized throughput and the request latency percentiles —
the serving layer's fundamental tradeoff curve.  The baseline is
single-request LoLa serving (every request its own accelerator run, no
batching), so the headline number is the amortized speedup of slot
batching over the paper's latency-oriented deployment.

Also demonstrates the design-cache contract: the sweep prices every
window through one shared :class:`~repro.serve.cache.DesignCache`, so
only the first scheduler run pays DSE — asserted in CI by watching the
``dse_points_*`` counters stay flat across a second run.
"""

from __future__ import annotations

from typing import Any

from ..fpga.device import FpgaDevice
from .cache import DesignCache
from .costmodel import ServingCostModel
from .records import ServeReport
from .scheduler import SchedulerConfig, SlotBatchScheduler
from .traffic import poisson_arrivals


def run_window(
    cost_model: ServingCostModel,
    batch_window_s: float,
    requests,
    max_lanes: int | None = None,
    queue_capacity: int = 1_000_000,
) -> ServeReport:
    """One point on the curve: serve ``requests`` under one window."""
    scheduler = SlotBatchScheduler(
        cost_model,
        SchedulerConfig(
            batch_window_s=batch_window_s,
            max_lanes=max_lanes,
            queue_capacity=queue_capacity,
        ),
    )
    return scheduler.run(requests)


def single_request_baseline(
    cost_model: ServingCostModel, requests
) -> ServeReport:
    """LoLa serving: batches capped at one lane, no batching ever wins."""
    scheduler = SlotBatchScheduler(
        cost_model,
        SchedulerConfig(
            batch_window_s=0.0, max_lanes=1, queue_capacity=1_000_000
        ),
    )
    return scheduler.run(requests)


def throughput_sweep(
    device: FpgaDevice,
    windows: list[float],
    request_count: int = 2000,
    rate_per_s: float = 5000.0,
    poly_degree: int = 8192,
    seed: int = 7,
    max_lanes: int | None = None,
    designs: DesignCache | None = None,
) -> dict[str, Any]:
    """Sweep batch windows over one Poisson arrival stream.

    Returns a JSON-ready report: the per-window curve, the single-request
    LoLa baseline, and the amortized speedup of the best window.
    """
    if designs is None:  # empty caches are falsy — test identity, not truth
        designs = DesignCache()
    cost_model = ServingCostModel.cryptonets_mnist(
        device, poly_degree=poly_degree, designs=designs
    )
    requests = poisson_arrivals(request_count, rate_per_s, seed=seed)

    baseline = single_request_baseline(cost_model, requests)
    curve = []
    for window in windows:
        report = run_window(
            cost_model, window, requests, max_lanes=max_lanes
        )
        latency = report.latency_percentiles()
        curve.append({
            "batch_window_s": window,
            "completed": report.completed,
            "rejected": report.rejected,
            "expired": report.expired,
            "batches": len(report.batches),
            "mean_fill_ratio": report.mean_fill_ratio,
            "throughput_images_per_s": report.throughput_images_per_s,
            "latency_p50_s": latency["p50"],
            "latency_p95_s": latency["p95"],
            "latency_p99_s": latency["p99"],
        })

    best = max(curve, key=lambda row: row["throughput_images_per_s"])
    baseline_tp = baseline.throughput_images_per_s
    return {
        "device": device.name,
        "poly_degree": poly_degree,
        "request_count": request_count,
        "rate_per_s": rate_per_s,
        "seed": seed,
        "cost_model": cost_model.as_dict(),
        "baseline": {
            "mode": "lola-single",
            "throughput_images_per_s": baseline_tp,
            "latency_p50_s": baseline.latency_percentiles()["p50"],
        },
        "curve": curve,
        "best_window_s": best["batch_window_s"],
        "amortized_speedup": (
            best["throughput_images_per_s"] / baseline_tp
            if baseline_tp > 0 else 0.0
        ),
        "design_cache": designs.stats().as_dict(),
    }
