"""The latency-vs-throughput sweep behind ``repro bench-throughput``.

For a fixed arrival stream, sweep the batch window and record, per
window, the amortized throughput and the request latency percentiles —
the serving layer's fundamental tradeoff curve.  The baseline is
single-request LoLa serving (every request its own accelerator run, no
batching), so the headline number is the amortized speedup of slot
batching over the paper's latency-oriented deployment.

Also demonstrates the design-cache contract: the sweep prices every
window through one shared :class:`~repro.serve.cache.DesignCache`, so
only the first scheduler run pays DSE — asserted in CI by watching the
``dse_points_*`` counters stay flat across a second run.
"""

from __future__ import annotations

from typing import Any

from ..fpga.device import FpgaDevice
from .cache import DesignCache
from .costmodel import ServingCostModel
from .records import ServeReport
from .scheduler import SchedulerConfig, SlotBatchScheduler
from .traffic import poisson_arrivals


def run_window(
    cost_model: ServingCostModel,
    batch_window_s: float,
    requests,
    max_lanes: int | None = None,
    queue_capacity: int = 1_000_000,
) -> ServeReport:
    """One point on the curve: serve ``requests`` under one window."""
    scheduler = SlotBatchScheduler(
        cost_model,
        SchedulerConfig(
            batch_window_s=batch_window_s,
            max_lanes=max_lanes,
            queue_capacity=queue_capacity,
        ),
    )
    return scheduler.run(requests)


def single_request_baseline(
    cost_model: ServingCostModel, requests
) -> ServeReport:
    """LoLa serving: batches capped at one lane, no batching ever wins."""
    scheduler = SlotBatchScheduler(
        cost_model,
        SchedulerConfig(
            batch_window_s=0.0, max_lanes=1, queue_capacity=1_000_000
        ),
    )
    return scheduler.run(requests)


def throughput_sweep(
    device: FpgaDevice,
    windows: list[float],
    request_count: int = 2000,
    rate_per_s: float = 5000.0,
    poly_degree: int = 8192,
    seed: int = 7,
    max_lanes: int | None = None,
    designs: DesignCache | None = None,
) -> dict[str, Any]:
    """Sweep batch windows over one Poisson arrival stream.

    Returns a JSON-ready report: the per-window curve, the single-request
    LoLa baseline, and the amortized speedup of the best window.
    """
    if designs is None:  # empty caches are falsy — test identity, not truth
        designs = DesignCache()
    cost_model = ServingCostModel.cryptonets_mnist(
        device, poly_degree=poly_degree, designs=designs
    )
    requests = poisson_arrivals(request_count, rate_per_s, seed=seed)

    baseline = single_request_baseline(cost_model, requests)
    curve = []
    for window in windows:
        report = run_window(
            cost_model, window, requests, max_lanes=max_lanes
        )
        latency = report.latency_percentiles()
        curve.append({
            "batch_window_s": window,
            "completed": report.completed,
            "rejected": report.rejected,
            "expired": report.expired,
            "batches": len(report.batches),
            "mean_fill_ratio": report.mean_fill_ratio,
            "throughput_images_per_s": report.throughput_images_per_s,
            "latency_p50_s": latency["p50"],
            "latency_p95_s": latency["p95"],
            "latency_p99_s": latency["p99"],
        })

    best = max(curve, key=lambda row: row["throughput_images_per_s"])
    baseline_tp = baseline.throughput_images_per_s
    return {
        "device": device.name,
        "poly_degree": poly_degree,
        "request_count": request_count,
        "rate_per_s": rate_per_s,
        "seed": seed,
        "cost_model": cost_model.as_dict(),
        "baseline": {
            "mode": "lola-single",
            "throughput_images_per_s": baseline_tp,
            "latency_p50_s": baseline.latency_percentiles()["p50"],
        },
        "curve": curve,
        "best_window_s": best["batch_window_s"],
        "amortized_speedup": (
            best["throughput_images_per_s"] / baseline_tp
            if baseline_tp > 0 else 0.0
        ),
        "design_cache": designs.stats().as_dict(),
    }


def autoscale_bench(
    device: FpgaDevice | None = None,
    duration_s: float = 600.0,
    base_rate_per_s: float = 4.0,
    peak_rate_per_s: float = 12.0,
    surge_base_rate_per_s: float = 6.0,
    surge_start_s: float = 240.0,
    surge_duration_s: float = 60.0,
    surge_multiplier: float = 10.0,
    p99_slo_s: float = 13.0,
    window_s: float = 10.0,
    max_lanes: int = 256,
    cooldown_s: float = 30.0,
    max_nodes: int = 3,
    seed: int = 1,
) -> dict[str, Any]:
    """The elastic-serving headline: diurnal + flash-crowd replay.

    One request stream — a diurnal day curve superposed with a
    ``surge_multiplier``× flash crowd — replayed three ways: through the
    :class:`~repro.serve.autoscale.FleetAutoscaler`, through a static
    fleet pinned at ``max_nodes`` and through a static single node.  The
    autoscaler must hold the p99 SLO in >= 99% of ``window_s`` windows
    once the surge's first scale-up settles (decision + cooldown) while
    billing fewer node-seconds than static-max provisioning, with every
    warm scale-up charging zero keygen/DSE.  The same shared planner
    then answers the capacity question for the surge's peak rate —
    planning and autoscaling agree on the fleet size.
    """
    from .. import obs
    from ..cluster.capacity import plan_capacity
    from ..cluster.serving import ClusterService
    from ..fpga import acu15eg
    from ..hecnn.batched import max_batch_lanes
    from ..obs.registry import REGISTRY
    from .autoscale import AutoscalerConfig, FleetAutoscaler, held_fraction
    from .slo import Slo, _percentile
    from .traffic import (
        diurnal_arrivals,
        flash_crowd_arrivals,
        merge_arrivals,
    )

    device = device if device is not None else acu15eg()
    requests = merge_arrivals(
        diurnal_arrivals(
            duration_s, base_rate_per_s, peak_rate_per_s,
            period_s=duration_s, seed=seed,
        ),
        flash_crowd_arrivals(
            duration_s, surge_base_rate_per_s, surge_start_s,
            surge_duration_s, surge_multiplier=surge_multiplier,
            seed=seed + 1,
        ),
    )
    config = SchedulerConfig(max_lanes=max_lanes)
    slos = (Slo("p99-latency", "p99_latency_s", p99_slo_s, window=1000),)

    with obs.observed():
        obs.reset()
        scaler = FleetAutoscaler(
            device,
            policy=AutoscalerConfig(
                min_nodes=1, max_nodes=max_nodes, cooldown_s=cooldown_s,
            ),
            config=config, slos=slos,
        )
        # The deployment is prewarmed; runtime resizes must not touch
        # DSE or keygen.  Watch the raw counters across the whole run.
        dse_before = REGISTRY.counter("dse_points_scanned").value
        ctx_miss_before = REGISTRY.counter(
            "cache_events_total", cache="context", event="miss"
        ).value
        report = scaler.run(list(requests))
        dse_during = (
            REGISTRY.counter("dse_points_scanned").value - dse_before
        )
        ctx_miss_during = REGISTRY.counter(
            "cache_events_total", cache="context", event="miss"
        ).value - ctx_miss_before
        counters = {
            action: REGISTRY.counter(
                "autoscale_decisions_total", action=action
            ).value
            for action in ("scale_up", "scale_down", "flap_suppressed")
        }
        spans = [
            e for e in obs.get_tracer().events()
            if e.get("cat") == "autoscale"
        ]

        # Static comparisons share the (now warm) planner and plans.
        static = {}
        for label, nodes in (("max", max_nodes), ("min", 1)):
            service = ClusterService(
                scaler._plan_for(nodes),
                batch_capacity=max_batch_lanes(scaler.poly_degree),
                config=config,
            )
            static_report = service.run(list(requests))
            lats = sorted(
                r.latency_s for r in static_report.results
                if r.latency_s is not None
            )
            static[label] = {
                "nodes": nodes,
                "completed": static_report.completed,
                "latency_p99_s": _percentile(lats, 99.0),
                "node_seconds": nodes * report.end_s,
                "held_fraction": held_fraction(
                    static_report, window_s, p99_slo_s
                ),
            }

        # The provisioning dual: for the surge's peak aggregate rate the
        # planner must recommend exactly the fleet the autoscaler used.
        peak_rate = (
            surge_base_rate_per_s * surge_multiplier + peak_rate_per_s
        )
        capacity = plan_capacity(
            peak_rate, p99_slo_s, device, max_nodes=max_nodes,
            planner=scaler.planner, config=config,
        )

    serve = report.serve
    latency = serve.latency_percentiles()
    scale_ups = [d for d in report.resizes if d.action == "scale_up"]
    scale_downs = [d for d in report.resizes if d.action == "scale_down"]
    first_up = scale_ups[0] if scale_ups else None
    settle_s = first_up.at_s + cooldown_s if first_up else 0.0
    held = held_fraction(serve, window_s, p99_slo_s, start_s=settle_s)
    static_max_seconds = static["max"]["node_seconds"]
    warm_zero_keygen = bool(scale_ups) and all(
        d.warm and d.spin_up_s == scaler.spin_up.node_warm_s
        for d in scale_ups
    )
    span_names = [e["name"] for e in spans]

    payload = {
        "device": device.name,
        "seed": seed,
        "scenario": {
            "duration_s": duration_s,
            "base_rate_per_s": base_rate_per_s,
            "peak_rate_per_s": peak_rate_per_s,
            "surge_base_rate_per_s": surge_base_rate_per_s,
            "surge_start_s": surge_start_s,
            "surge_duration_s": surge_duration_s,
            "surge_multiplier": surge_multiplier,
            "requests": len(requests),
            "max_lanes": max_lanes,
        },
        "slo": {"p99_s": p99_slo_s, "window_s": window_s},
        "policy": report.policy,
        "spin_up": report.spin_up,
        "autoscale": {
            "completed": serve.completed,
            "rejected": serve.rejected,
            "expired": serve.expired,
            "latency_p50_s": latency["p50"],
            "latency_p99_s": latency["p99"],
            "throughput_images_per_s": serve.throughput_images_per_s,
            "node_seconds": report.node_seconds,
            "end_s": report.end_s,
            "peak_nodes": report.peak_nodes,
            "settle_s": settle_s,
            "held_fraction_after_settle": held,
            "scale_ups": len(scale_ups),
            "scale_downs": len(scale_downs),
            "flap_suppressed": len(report.decisions) - len(report.resizes),
            "decisions": [d.as_dict() for d in report.decisions],
            "timeline": [list(p) for p in report.timeline],
            "decision_counters": counters,
            "trace_spans": {
                "spin_up": sum(
                    1 for n in span_names if n.startswith("spin_up")
                ),
                "drain": sum(
                    1 for n in span_names if n.startswith("drain")
                ),
            },
            "dse_points_scanned_during_run": dse_during,
            "context_misses_during_run": ctx_miss_during,
        },
        "static": static,
        "capacity_plan": {
            "target_rate_per_s": peak_rate,
            "recommended_nodes": capacity.recommended_nodes,
            "frontier": [p.as_dict() for p in capacity.frontier],
        },
        "savings_vs_static_max": (
            1.0 - report.node_seconds / static_max_seconds
        ),
    }
    payload["invariants"] = {
        # The headline: p99 held through the surge once the first
        # scale-up settled, at >= 99% of windows.
        "p99_held_after_settle": held >= 0.99,
        "scaled_up_through_the_surge": bool(scale_ups),
        "beats_static_max_node_hours": (
            report.node_seconds < static_max_seconds
        ),
        # Warm scale-ups charge base provisioning only: zero keygen,
        # zero DSE — and the raw counters agree.
        "warm_scale_up_zero_keygen": warm_zero_keygen,
        "warm_scale_up_zero_dse": dse_during == 0 and ctx_miss_during == 0,
        # Every decision is counted and every resize traced.
        "all_decisions_counted": (
            counters["scale_up"] == len(scale_ups)
            and counters["scale_down"] == len(scale_downs)
            and counters["flap_suppressed"]
            == len(report.decisions) - len(report.resizes)
        ),
        "all_resizes_traced": (
            payload["autoscale"]["trace_spans"]["spin_up"]
            == len(scale_ups)
            and payload["autoscale"]["trace_spans"]["drain"]
            == len(scale_downs)
        ),
        "no_requests_lost": (
            serve.completed == len(requests)
            and serve.rejected == 0 and serve.expired == 0
        ),
        # Planning and autoscaling agree on the surge's fleet size.
        "capacity_plan_matches_peak": (
            capacity.recommended_nodes == report.peak_nodes
        ),
    }
    return payload
