"""Cost facts the scheduler's dispatch policy is built on.

Two execution modes, both priced by the DSE'd accelerator design:

* **LoLa single** — the paper's latency-oriented packing; one image costs
  ``single_request_seconds`` and images serialize on the accelerator;
* **slot batch** — the CryptoNets-style batched trace; one run costs
  ``batch_seconds`` *regardless of lane occupancy* (the operation counts
  are lane-invariant), serving up to ``batch_capacity = N/2`` images.

The interesting consequence is the crossover: a batch of ``k`` images is
only worth dispatching in batched mode when ``batch_seconds <
k * single_request_seconds``; below that the scheduler degrades to plain
LoLa execution.  On CryptoNets-MNIST / ACU9EG the crossover sits near
``k = 50`` — far below the 4096-lane capacity, which is why even modest
traffic amortizes well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..fpga.device import FpgaDevice
from ..hecnn.batched import cryptonets_mnist_batched, max_batch_lanes
from ..hecnn.models import fxhenn_mnist_model
from ..hecnn.trace import NetworkTrace
from .cache import DesignCache


@dataclass
class ServingCostModel:
    """Mode costs for one (single-trace, batched-trace, device) triple.

    Design latencies are resolved lazily through the ``designs`` cache, so
    constructing the model is free and a warm cache makes pricing free
    too.
    """

    single_trace: NetworkTrace
    batched_trace: NetworkTrace
    device: FpgaDevice
    designs: DesignCache = field(default_factory=DesignCache)

    @classmethod
    def cryptonets_mnist(
        cls,
        device: FpgaDevice,
        poly_degree: int = 8192,
        designs: DesignCache | None = None,
    ) -> "ServingCostModel":
        """The benchmark pairing: FxHENN-MNIST (LoLa) vs CryptoNets-MNIST
        (slot-batched) on one device."""
        # `is None`, not `or`: an empty DesignCache is falsy (len == 0)
        # and must still be the one the caller gets warmed.
        return cls(
            single_trace=fxhenn_mnist_model().trace(),
            batched_trace=cryptonets_mnist_batched(poly_degree),
            device=device,
            designs=DesignCache() if designs is None else designs,
        )

    @property
    def batch_capacity(self) -> int:
        """Slot lanes per batch: ``N/2`` of the batched trace."""
        return max_batch_lanes(self.batched_trace.poly_degree)

    def single_request_seconds(self) -> float:
        """Latency of one LoLa inference on the chosen design."""
        return self.designs.get(
            self.single_trace, self.device
        ).latency_seconds

    def batch_seconds(self, lanes: int | None = None) -> float:
        """Latency of one slot-batched run — lane-invariant by design.

        ``lanes`` is accepted (and validated) for symmetry, but any
        occupancy from 1 to ``batch_capacity`` costs the same run.
        """
        if lanes is not None and not 1 <= lanes <= self.batch_capacity:
            raise ValueError(
                f"lanes must be in [1, {self.batch_capacity}], got {lanes}"
            )
        return self.designs.get(
            self.batched_trace, self.device
        ).latency_seconds

    def amortized_per_image_seconds(self, lanes: int) -> float:
        """Per-image cost of a batch carrying ``lanes`` live images."""
        return self.batch_seconds(lanes) / lanes

    def lola_wins(self, lanes: int) -> bool:
        """True when serializing ``lanes`` LoLa runs beats one batch."""
        return lanes * self.single_request_seconds() < self.batch_seconds()

    def crossover_lanes(self) -> int:
        """Smallest occupancy at which the slot batch wins (≥ 1)."""
        single = self.single_request_seconds()
        batch = self.batch_seconds()
        k = int(batch / single) + 1
        return max(1, min(k, self.batch_capacity))

    def as_dict(self) -> dict[str, Any]:
        return {
            "single_trace": self.single_trace.name,
            "batched_trace": self.batched_trace.name,
            "device": self.device.name,
            "batch_capacity": self.batch_capacity,
            "single_request_seconds": self.single_request_seconds(),
            "batch_seconds": self.batch_seconds(),
            "crossover_lanes": self.crossover_lanes(),
        }
