"""Virtual-time slot-batch scheduler: the serving policy, simulated.

A discrete-event simulation of one accelerator serving single-image
requests under the slot-batching policy:

* arrivals join a **bounded admission queue** (backpressure: a full queue
  rejects);
* the accelerator dispatches a batch when the queue holds a full
  ``capacity`` of lanes, or when the oldest waiting request has aged past
  the **batch window** — the knob trading tail latency against slot fill;
* requests whose **deadline** passes before dispatch expire instead of
  wasting lanes;
* an under-filled batch **degrades to LoLa**: if ``k`` serialized
  single-image runs are cheaper than one batched run
  (``k < crossover``), the scheduler runs them unbatched;
* admission is **key-aware**: a batch only ever carries requests of one
  tenant :attr:`~repro.serve.request.InferenceRequest.key_group` (slot
  lanes of one ciphertext stream share one secret key).  A key group
  dispatches when it fills a batch, and a rare key's partial batch ages
  out when its oldest request's window closes rather than stranding —
  ``key_group=None`` requests form the legacy single-key universe and
  the policy reduces exactly to the original scheduler.

Virtual time makes the policy exactly reproducible — batch latencies come
from the DSE'd designs via :class:`~repro.serve.costmodel
.ServingCostModel`, not from wall clocks — so benches and tests can
assert on precise latency/throughput numbers.  The same policy runs on
real threads in :mod:`repro.serve.service`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..obs.alerts import AlertEngine
from ..obs.probes import (
    record_batch_dispatch,
    record_flight,
    record_queue_depth,
    record_request_latency,
    record_request_outcome,
    record_throughput,
    record_timeseries_flush,
    record_timeseries_tick,
)
from ..obs.tracing import emit_virtual, trace_span

#: Virtual-trace track for batch events; request journeys ride on
#: ``tid = request_id + 1`` (track 0 is the batch lane).
BATCH_TID = 0


def _request_tid(request_id: int) -> int:
    return request_id + 1
from .costmodel import ServingCostModel
from .costs import CostLedger
from .records import BatchRecord, RequestResult, ServeReport
from .request import InferenceRequest


@dataclass(frozen=True)
class SchedulerConfig:
    """Serving policy knobs.

    ``batch_window_s`` bounds how long the oldest request may wait for
    lane-mates; ``max_lanes`` caps batch size below the packing capacity
    (``None`` = use all ``N/2`` lanes); ``queue_capacity`` bounds the
    admission queue (backpressure); ``degrade_to_lola`` enables the
    unbatched fallback for batches below the cost crossover.
    """

    batch_window_s: float = 0.5
    max_lanes: int | None = None
    queue_capacity: int = 10_000
    degrade_to_lola: bool = True

    def __post_init__(self) -> None:
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.max_lanes is not None and self.max_lanes < 1:
            raise ValueError("max_lanes must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")

    def as_dict(self) -> dict[str, Any]:
        return {
            "batch_window_s": self.batch_window_s,
            "max_lanes": self.max_lanes,
            "queue_capacity": self.queue_capacity,
            "degrade_to_lola": self.degrade_to_lola,
        }


class SlotBatchScheduler:
    """Simulate serving a request stream; see the module docstring."""

    def __init__(
        self,
        cost_model: ServingCostModel,
        config: SchedulerConfig | None = None,
        ledger: CostLedger | None = None,
        alerts: AlertEngine | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.config = config or SchedulerConfig()
        cap = self.cost_model.batch_capacity
        self.capacity = min(self.config.max_lanes or cap, cap)
        #: Optional per-tenant cost attribution (charged at dispatch).
        self.ledger = ledger
        #: Optional alert engine ticked along the virtual clock.
        self.alerts = alerts

    def _obs_tick(self, now_s: float) -> None:
        """Advance the telemetry clock at a virtual instant: sample the
        time-series store and evaluate alert rules against it."""
        record_timeseries_tick(now_s)
        if self.alerts is not None:
            self.alerts.tick(now_s)

    def _obs_flush(self, now_s: float) -> None:
        """End-of-run: force a final sample so terminal events are in
        the history, then give alert rules one last evaluation."""
        record_timeseries_flush(now_s)
        if self.alerts is not None:
            self.alerts.tick(now_s)

    def run(self, requests: list[InferenceRequest]) -> ServeReport:
        with trace_span("serve.run", category="serve",
                        window=self.config.batch_window_s) as span:
            report = self._run(requests)
            span.set(completed=report.completed,
                     throughput=report.throughput_images_per_s)
        return report

    def _run(self, requests: list[InferenceRequest]) -> ServeReport:
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        queue: list[InferenceRequest] = []
        results: list[RequestResult] = []
        batches: list[BatchRecord] = []
        free_at = 0.0
        end_s = 0.0
        i = 0

        def admit_until(t: float) -> None:
            nonlocal i, end_s
            end_s = max(end_s, t)
            self._obs_tick(t)
            while i < len(pending) and pending[i].arrival_s <= t:
                req = pending[i]
                i += 1
                if len(queue) >= self.config.queue_capacity:
                    results.append(RequestResult(
                        request_id=req.request_id, outcome="rejected",
                        arrival_s=req.arrival_s, key_group=req.key_group,
                    ))
                    record_request_outcome(
                        "rejected", request_id=req.request_id,
                        trace_id=req.trace_ref, queue="serve",
                    )
                    # Mirror the "admit" flight event so dump-on-error
                    # windows show backpressure, not just acceptances.
                    record_flight(
                        "reject", request_id=req.request_id,
                        trace_id=req.trace_ref, queue="serve",
                        depth=len(queue), key_group=req.key_group,
                    )
                else:
                    queue.append(req)
                    record_flight(
                        "admit", request_id=req.request_id,
                        trace_id=req.trace_ref, queue="serve",
                        depth=len(queue), key_group=req.key_group,
                    )
                record_queue_depth(len(queue))

        def full_group_head() -> InferenceRequest | None:
            """Oldest member of the first key group that fills a batch.

            FIFO scan keeps the choice deterministic: among groups that
            can dispatch full right now, the one that has waited longest
            goes first.  Returning the member (not the group) keeps
            ``key_group=None`` — a valid legacy group — distinguishable
            from "no group is full".
            """
            counts: dict[str | None, int] = {}
            for req in queue:
                counts[req.key_group] = counts.get(req.key_group, 0) + 1
            for req in queue:
                if counts[req.key_group] >= self.capacity:
                    return req
            return None

        while i < len(pending) or queue:
            if not queue:
                admit_until(pending[i].arrival_s)
                continue
            oldest = queue[0]
            full_head = full_group_head()
            if full_head is None:
                # No key group fills a batch yet.  The oldest request's
                # window bounds how long its group may wait for key-mates;
                # rare keys age out at window close instead of stranding.
                group = oldest.key_group
                window_close = oldest.arrival_s + self.config.batch_window_s
                if i < len(pending) and pending[i].arrival_s <= window_close:
                    # The batch is still open and more arrivals land
                    # before the window closes: wait for them.
                    admit_until(pending[i].arrival_s)
                    continue
                dispatch_at = max(free_at, window_close)
            else:
                group = full_head.key_group
                dispatch_at = max(free_at, full_head.arrival_s)
            # Arrivals while the accelerator drains still make this batch.
            admit_until(dispatch_at)

            # Deadline check happens at dispatch: a request that would
            # start past its deadline expires instead of occupying a lane.
            alive: list[InferenceRequest] = []
            for req in queue:
                if req.expired(dispatch_at):
                    results.append(RequestResult(
                        request_id=req.request_id, outcome="expired",
                        arrival_s=req.arrival_s, key_group=req.key_group,
                    ))
                    record_request_outcome(
                        "expired", request_id=req.request_id,
                        trace_id=req.trace_ref, queue="serve",
                    )
                    emit_virtual(
                        "expired", "request", req.arrival_s,
                        dispatch_at - req.arrival_s,
                        tid=_request_tid(req.request_id),
                        args={"trace_id": req.trace_ref,
                              "request_id": req.request_id},
                    )
                else:
                    alive.append(req)
            queue = alive
            record_queue_depth(len(queue))
            if not queue:
                continue

            # Only the chosen key group rides this batch — lanes of one
            # ciphertext stream all decrypt under one key.
            batch = [
                r for r in queue if r.key_group == group
            ][: self.capacity]
            if not batch:
                continue  # the whole group expired; re-pick next round
            taken = {r.request_id for r in batch}
            queue = [r for r in queue if r.request_id not in taken]
            record_queue_depth(len(queue))
            k = len(batch)
            mode = "batched"
            if self.config.degrade_to_lola and self.cost_model.lola_wins(k):
                mode = "lola"
            if mode == "lola":
                single = self.cost_model.single_request_seconds()
                finish = dispatch_at
                for req in batch:
                    finish += single
                    self._complete(results, req, mode, dispatch_at, finish,
                                   len(batches))
                free_at = finish
            else:
                finish = dispatch_at + self.cost_model.batch_seconds(k)
                for req in batch:
                    self._complete(results, req, mode, dispatch_at, finish,
                                   len(batches))
                free_at = finish
            batches.append(BatchRecord(
                batch_id=len(batches), mode=mode, lanes=k,
                capacity=self.capacity, start_s=dispatch_at,
                finish_s=free_at, key_group=group,
            ))
            if self.ledger is not None:
                # The batch occupies the accelerator dispatch->finish;
                # each lane is charged its exact share.
                self.ledger.note_batch(
                    [r.key_group for r in batch], free_at - dispatch_at
                )
            record_batch_dispatch(k, self.capacity, mode)
            end_s = max(end_s, free_at)
            self._obs_tick(free_at)
            emit_virtual(
                f"batch {batches[-1].batch_id} [{mode}]", "serve.batch",
                dispatch_at, free_at - dispatch_at, tid=BATCH_TID,
                args={
                    "batch_id": batches[-1].batch_id, "lanes": k,
                    "mode": mode, "key_group": group,
                    "trace_ids": [r.trace_ref for r in batch[:64]],
                },
            )

        self._obs_flush(end_s)
        results.sort(key=lambda r: r.request_id)
        report = ServeReport(
            results=tuple(results),
            batches=tuple(batches),
            config={
                **self.config.as_dict(),
                "capacity": self.capacity,
                "cost_model": self.cost_model.as_dict(),
            },
        )
        record_throughput(report.throughput_images_per_s)
        return report

    @staticmethod
    def _complete(
        results: list[RequestResult],
        req: InferenceRequest,
        mode: str,
        start_s: float,
        finish_s: float,
        batch_id: int,
    ) -> None:
        results.append(RequestResult(
            request_id=req.request_id, outcome=mode,
            arrival_s=req.arrival_s, start_s=start_s, finish_s=finish_s,
            batch_id=batch_id, key_group=req.key_group,
        ))
        record_request_outcome(mode)
        record_request_latency(finish_s - req.arrival_s, mode)
        journey = {"trace_id": req.trace_ref, "request_id": req.request_id,
                   "batch_id": batch_id}
        emit_virtual(
            "queue_wait", "request", req.arrival_s,
            start_s - req.arrival_s, tid=_request_tid(req.request_id),
            args=journey,
        )
        emit_virtual(
            "execute", "request", start_s, finish_s - start_s,
            tid=_request_tid(req.request_id), args={**journey, "mode": mode},
        )
