"""A bounded, thread-safe LRU cache with observability hooks.

The serving layer (``repro.serve``) keeps accelerator designs, CKKS
contexts and rotation-key material alive across requests so repeated
inference skips design space exploration and key generation; the FHE
context uses the same structure to bound its NTT-resident plaintext
cache.  Both need the identical semantics:

* **bounded**: memory is capped by entry count; the least-recently-used
  entry is evicted when a put would exceed capacity;
* **thread-safe**: the serving worker pool hits one shared cache from
  many threads, so every operation takes the cache's lock;
* **observable**: hits, misses, evictions and explicit removals
  (``pop``/``clear``) publish to the ``repro.obs`` registry
  (``cache_events_total{cache=..., event=...}`` plus the ``cache_size``
  and ``cache_hit_ratio`` gauges, kept in lock-step with the true size
  and lifetime hit rate) when observability is enabled, and
  :meth:`LruCache.stats` is always available for reports.  The hit-ratio
  gauge is the supported way for control-plane consumers (the
  autoscaler's spin-up cost model) to read cache warmth — they should
  not re-derive it from the raw event counters.

Kept dependency-free (only ``repro.obs``, itself zero-dependency) so the
FHE layer can import it without cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

from .obs import config as obs_config
from .obs.flight import FLIGHT
from .obs.registry import REGISTRY


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache's lifetime activity (JSON-ready)."""

    name: str
    capacity: int
    size: int
    hits: int
    misses: int
    #: Entries removed for any reason: capacity pressure, ``pop``, and
    #: ``clear`` all count — the gauge-vs-stats parity tests rely on it.
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LruCache:
    """An ordered-dict LRU with dict-compatible accessors.

    ``get``/``__getitem__`` refresh recency; ``put``/``__setitem__``
    insert and evict the oldest entry once ``capacity`` is exceeded.
    ``get_or_create`` runs ``factory`` on a miss under a *per-key*
    in-flight lock: two threads warming the same key run the factory
    exactly once (the loser blocks briefly and gets the winner's value).
    Factories for *different* keys still build concurrently, and the
    cache's own lock is never held across a factory call.
    """

    def __init__(
        self, capacity: int, name: str = "lru", flight: bool = False
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        #: Mirror hit/miss/eviction events into the flight recorder.
        #: Off by default — per-op caches (the NTT plaintext cache) would
        #: flood the bounded ring; the coarse design/context caches opt in.
        self.flight = flight
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # Per-key build locks for get_or_create; guarded by _inflight_lock.
        self._inflight: dict[Hashable, threading.Lock] = {}
        self._inflight_lock = threading.Lock()

    # -- core operations ------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                self._publish("hit")
                return self._data[key]
            self._misses += 1
            self._publish("miss")
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1
                self._publish("eviction")
            self._publish_size()

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is not sentinel:
            return value
        with self._inflight_lock:
            build_lock = self._inflight.setdefault(key, threading.Lock())
        with build_lock:
            # Double-check under the key's build lock: the thread that
            # lost the race finds the winner's value and never builds.
            # Peek without touching hit/miss stats — this re-check is an
            # implementation detail of one logical lookup, not a second
            # cache access.
            with self._lock:
                if key in self._data:
                    self._data.move_to_end(key)
                    return self._data[key]
            value = factory()
            self.put(key, value)
        with self._inflight_lock:
            self._inflight.pop(key, None)
        return value

    def pop(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key not in self._data:
                return default
            value = self._data.pop(key)
            self._evictions += 1
            self._publish("pop")
            return value

    def clear(self) -> None:
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
            if dropped:
                self._evictions += dropped
                self._publish("clear")

    # -- dict compatibility ---------------------------------------------------

    def __getitem__(self, key: Hashable) -> Any:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data.keys()))

    # -- observability --------------------------------------------------------

    def _publish(self, event: str) -> None:
        # Called with the lock held; registry counters take their own lock
        # only on first creation, so this stays cheap.
        if obs_config.enabled():
            REGISTRY.counter(
                "cache_events_total", cache=self.name, event=event
            ).inc()
            REGISTRY.gauge("cache_size", cache=self.name).set(len(self._data))
            self._publish_hit_ratio()
            if self.flight:
                FLIGHT.record(
                    "cache", cache=self.name, event=event,
                    size=len(self._data),
                )

    def _publish_size(self) -> None:
        # Keep the size gauge in lock-step with every mutation (put, pop,
        # clear) — it used to lag behind explicit removals forever.  The
        # hit-ratio gauge rides along so both stay parity-exact with
        # stats() after any mutation.
        if obs_config.enabled():
            REGISTRY.gauge("cache_size", cache=self.name).set(len(self._data))
            self._publish_hit_ratio()

    def _publish_hit_ratio(self) -> None:
        # Called with the lock held.  Lifetime hit rate matching
        # CacheStats.hit_rate exactly (0.0 before any lookups).
        total = self._hits + self._misses
        ratio = self._hits / total if total else 0.0
        REGISTRY.gauge("cache_hit_ratio", cache=self.name).set(ratio)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                capacity=self.capacity,
                size=len(self._data),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )
