"""FxHENN reproduction: FPGA acceleration framework for HE-CNN inference.

A full-system Python reproduction of *FxHENN: FPGA-based acceleration
framework for homomorphic encrypted CNN inference* (HPCA 2023):

* :mod:`repro.fhe` -- a from-scratch RNS-CKKS library (NTT, keys, all HE ops);
* :mod:`repro.hecnn` -- LoLa-style packed HE-CNN layers, the paper's two
  benchmark networks, and analytic operation-trace extraction;
* :mod:`repro.fpga` -- FPGA device specs and Table-I-calibrated
  resource/latency models of the HE operation modules;
* :mod:`repro.sim` -- a discrete pipeline simulator validating the model;
* :mod:`repro.core` -- the FxHENN framework itself: design space
  exploration, module/buffer reuse, baseline comparison, design emission;
* :mod:`repro.analysis` -- reporting and published comparison data.

Quickstart::

    from repro.core import FxHennFramework
    from repro.fpga import acu9eg
    from repro.hecnn import fxhenn_mnist_model

    design = FxHennFramework().generate(fxhenn_mnist_model(), acu9eg())
    print(design.latency_seconds)
    print(design.hls_directives())
"""

from .optypes import MODULE_OPS, HeOp, module_for

__version__ = "1.0.0"

__all__ = ["HeOp", "MODULE_OPS", "module_for", "__version__"]
