"""Domain probes: the bridge between the framework and the obs substrate.

Thin, import-cheap helpers that the FHE evaluator, the HE-CNN network, the
noise estimator, the accelerator simulator and the DSE call at their
interesting moments.  Every helper is a no-op (single flag check) while
observability is disabled, except :class:`DseProgress`, which is a plain
local accumulator handed back to the caller (the parallel DSE forks worker
processes, whose registries are invisible to the parent — so DSE stats are
counted locally and merged into the registry by the coordinating process).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from . import config
from .flight import FLIGHT
from .registry import REGISTRY


def record_flight(kind: str, **fields: Any) -> None:
    """Append one event to the flight recorder (no-op while obs is off).

    The structured twin of a log line: admissions, dispatches, expiries,
    cache traffic and DSE incumbents all flow through here so the last N
    of them survive in the bounded ring (:mod:`repro.obs.flight`).
    """
    if not config.enabled():
        return
    FLIGHT.record(kind, **fields)


def record_he_op(op: str, level: int | None = None,
                 scale: float | None = None) -> None:
    """Count one evaluator operation and publish post-op ciphertext state."""
    if not config.enabled():
        return
    REGISTRY.counter("he_ops_total", op=op).inc()
    if level is not None:
        REGISTRY.gauge("ciphertext_level", op=op).set(level)
    if scale is not None and scale > 0:
        REGISTRY.gauge("ciphertext_scale_log2", op=op).set(math.log2(scale))


def record_noise_budget(bits: float, **labels: Any) -> None:
    """Publish a noise-budget gauge (bits of guaranteed precision)."""
    if not config.enabled():
        return
    REGISTRY.gauge("noise_budget_bits", **labels).set(bits)


def record_noise_headroom(bits: float, **labels: Any) -> None:
    """Publish the analytic noise headroom (bits remaining) at a layer
    boundary — the gauge the lineage tracker's threshold watch reads."""
    if not config.enabled() or not math.isfinite(bits):
        return
    REGISTRY.gauge("noise_headroom_bits", **labels).set(bits)


def record_noise_gap(gap_bits: float, **labels: Any) -> None:
    """Observe one measured-vs-analytic noise gap (audit mode).

    ``gap_bits = measured_bits - analytic_bits``; positive means the
    analytic bound was conservative (as it must be).  Non-finite gaps
    (an exactly-zero measured error) are skipped — they carry no width
    information and would poison the histogram sum.
    """
    if not config.enabled() or not math.isfinite(gap_bits):
        return
    REGISTRY.histogram("noise_gap_bits", **labels).observe(gap_bits)


def record_layer(name: str, kind: str, num_cts: int, level: int) -> None:
    """Per-layer stream facts, published as the layer finishes."""
    if not config.enabled():
        return
    REGISTRY.counter("layers_total", kind=kind).inc()
    REGISTRY.gauge("layer_output_cts", layer=name).set(num_cts)
    REGISTRY.gauge("layer_output_level", layer=name).set(level)


def record_sim_layer(name: str, simulated_cycles: int,
                     analytic_cycles: int) -> None:
    """Simulated-vs-analytic agreement for one layer."""
    if not config.enabled():
        return
    REGISTRY.counter("sim_layers_total").inc()
    if analytic_cycles:
        rel = (simulated_cycles - analytic_cycles) / analytic_cycles
        REGISTRY.histogram("sim_relative_error").observe(rel)


def record_timeseries_tick(now_s: float) -> None:
    """Sample the global time-series store at a virtual instant.

    The virtual-time serving loops call this at every interesting
    moment; the store's own cadence check keeps stored history evenly
    spaced, and the disabled path stays one flag check.
    """
    if not config.enabled():
        return
    from .timeseries import TIMESERIES

    TIMESERIES.maybe_sample(now_s)


def record_timeseries_flush(now_s: float) -> None:
    """Force one final time-series sample at the end of a virtual run.

    Terminal events (the last batch's outcomes, a drain's expirations)
    land *after* the last cadence tick; without a flush they would never
    appear in the history — or in any alert evaluation keyed off it.
    """
    if not config.enabled():
        return
    from .timeseries import TIMESERIES

    TIMESERIES.sample(now_s)


# ---------------------------------------------------------------------------
# Serving-layer probes
# ---------------------------------------------------------------------------


def record_queue_depth(depth: int, queue: str = "serve") -> None:
    """Publish the admission-queue depth after an enqueue/dequeue."""
    if not config.enabled():
        return
    REGISTRY.gauge("serve_queue_depth", queue=queue).set(depth)


def record_batch_dispatch(lanes: int, capacity: int, mode: str) -> None:
    """One dispatched batch: count it and observe its slot-fill ratio."""
    if not config.enabled():
        return
    REGISTRY.counter("serve_batches_total", mode=mode).inc()
    REGISTRY.counter("serve_images_total", mode=mode).inc(lanes)
    if capacity > 0:
        REGISTRY.histogram("serve_batch_fill_ratio").observe(lanes / capacity)
    FLIGHT.record("dispatch", lanes=lanes, capacity=capacity, mode=mode)


def record_request_latency(seconds: float, mode: str) -> None:
    """Per-request latency (arrival to completion), labeled by exec mode."""
    if not config.enabled():
        return
    REGISTRY.histogram(
        "serve_request_latency_seconds", mode=mode
    ).observe(seconds)


def record_request_outcome(outcome: str, **fields: Any) -> None:
    """Count a request's terminal state: completed / rejected / expired.

    Non-completion outcomes also land in the flight recorder — they are
    exactly the events a post-mortem wants in arrival order.
    """
    if not config.enabled():
        return
    REGISTRY.counter("serve_requests_total", outcome=outcome).inc()
    if outcome in ("rejected", "expired"):
        FLIGHT.record(outcome, **fields)


def record_tenant_event(event: str) -> None:
    """Count one tenant lifecycle transition: registered / key_rotation /
    evicted.  The matching flight events carry the tenant identity; this
    counter answers "how much key churn" without unbounded label
    cardinality (no per-tenant labels)."""
    if not config.enabled():
        return
    REGISTRY.counter("tenant_events_total", event=event).inc()


def record_tenant_cost(tenant: str, **values: float) -> None:
    """Publish one tenant's settled charges as ``cost_<metric>`` gauges.

    Per-tenant labels are high cardinality by design (the whole point of
    attribution); small OpenMetrics exports scope the ``cost_`` prefix
    out with the exporter's include/exclude filters.
    """
    if not config.enabled():
        return
    for metric, value in values.items():
        REGISTRY.gauge(f"cost_{metric}", tenant=tenant).set(value)


def record_throughput(images_per_second: float) -> None:
    """Publish amortized serving throughput over the run so far."""
    if not config.enabled():
        return
    REGISTRY.gauge("serve_throughput_images_per_second").set(
        images_per_second
    )


# ---------------------------------------------------------------------------
# Cluster probes
# ---------------------------------------------------------------------------


def record_cluster_plan(fleet: str, network: str, bottleneck_seconds: float,
                        throughput: float) -> None:
    """One fleet plan was produced: count it, publish its economics."""
    if not config.enabled():
        return
    REGISTRY.counter("cluster_plans_total", fleet=fleet, network=network).inc()
    REGISTRY.gauge(
        "cluster_bottleneck_seconds", fleet=fleet, network=network
    ).set(bottleneck_seconds)
    REGISTRY.gauge(
        "cluster_throughput_per_second", fleet=fleet, network=network
    ).set(throughput)


def record_cluster_stage(stage: int, device: str, busy_seconds: float,
                         utilization: float) -> None:
    """Per-stage occupancy of the steady-state pipeline interval."""
    if not config.enabled():
        return
    REGISTRY.gauge(
        "cluster_stage_busy_seconds", stage=stage, device=device
    ).set(busy_seconds)
    REGISTRY.gauge(
        "cluster_stage_utilization", stage=stage, device=device
    ).set(utilization)


def record_cluster_transfer(stage: int, num_bytes: int,
                            seconds: float) -> None:
    """Bytes shipped across the link leaving ``stage``."""
    if not config.enabled():
        return
    REGISTRY.counter("cluster_transfer_bytes_total", stage=stage).inc(
        num_bytes
    )
    REGISTRY.gauge("cluster_transfer_seconds", stage=stage).set(seconds)


def record_cluster_batch(lanes: int, latency_seconds: float) -> None:
    """One slot batch completed its trip through the cluster pipeline."""
    if not config.enabled():
        return
    REGISTRY.counter("cluster_batches_total").inc()
    REGISTRY.counter("cluster_images_total").inc(lanes)
    REGISTRY.histogram("cluster_batch_latency_seconds").observe(
        latency_seconds
    )


# ---------------------------------------------------------------------------
# Autoscaler probes
# ---------------------------------------------------------------------------


def record_fleet_size(size: int) -> None:
    """Publish the autoscaler's current fleet size (nodes serving)."""
    if not config.enabled():
        return
    REGISTRY.gauge("fleet_size").set(size)


def record_autoscale_decision(
    action: str, fleet_size: int, **fields: Any
) -> None:
    """One autoscaler control decision: scale_up / scale_down /
    flap_suppressed.

    Counts it by action, republishes the ``fleet_size`` gauge, and lands
    the full decision context in the flight recorder — every resize (and
    every resize the cooldown vetoed) is reconstructible post-mortem.
    """
    if not config.enabled():
        return
    REGISTRY.counter("autoscale_decisions_total", action=action).inc()
    REGISTRY.gauge("fleet_size").set(fleet_size)
    FLIGHT.record(action, fleet_size=fleet_size, **fields)


def record_spin_up_cost(seconds: float, warm: bool) -> None:
    """The spin-up cost charged for one scale-up (virtual seconds)."""
    if not config.enabled():
        return
    REGISTRY.histogram(
        "autoscale_spin_up_seconds", warm="true" if warm else "false"
    ).observe(seconds)


# ---------------------------------------------------------------------------
# DSE progress
# ---------------------------------------------------------------------------

#: Signature of the optional DSE progress callback: called with an event
#: dict such as ``{"event": "incumbent", "latency_cycles": ..., ...}``.
ProgressCallback = Callable[[dict[str, Any]], None]


@dataclass
class DseProgress:
    """Local accumulator for one design-space scan.

    Picklable (plain ints), so worker processes return one per chunk and
    the parent merges them with :meth:`merge` before publishing to the
    registry via :meth:`publish`.
    """

    scanned: int = 0
    dsp_pruned: int = 0
    bound_pruned: int = 0
    feasible: int = 0
    improvements: int = 0
    callback: ProgressCallback | None = field(
        default=None, repr=False, compare=False
    )

    def note_scanned(self, n: int = 1) -> None:
        self.scanned += n

    def note_dsp_pruned(self) -> None:
        self.dsp_pruned += 1

    def note_bound_pruned(self) -> None:
        self.bound_pruned += 1

    def note_feasible(self) -> None:
        self.feasible += 1

    def note_incumbent(self, latency_cycles: int) -> None:
        """A new best-so-far solution was found."""
        self.improvements += 1
        record_flight(
            "dse_incumbent", latency_cycles=latency_cycles,
            scanned=self.scanned, feasible=self.feasible,
        )
        if self.callback is not None:
            self.callback({
                "event": "incumbent",
                "latency_cycles": latency_cycles,
                "scanned": self.scanned,
                "feasible": self.feasible,
            })

    def replay_incumbent(self, latency_cycles: int) -> None:
        """Fire the callback for an incumbent found elsewhere.

        Used by the parallel DSE reduction: worker chunks already counted
        the improvement locally (and the counts arrive via :meth:`merge`),
        so the parent must notify its callback *without* incrementing
        ``improvements`` again.
        """
        if self.callback is not None:
            self.callback({
                "event": "incumbent",
                "latency_cycles": latency_cycles,
                "scanned": self.scanned,
                "feasible": self.feasible,
            })

    def merge(self, other: "DseProgress") -> None:
        self.scanned += other.scanned
        self.dsp_pruned += other.dsp_pruned
        self.bound_pruned += other.bound_pruned
        self.feasible += other.feasible
        self.improvements += other.improvements

    def as_dict(self) -> dict[str, int]:
        return {
            "scanned": self.scanned,
            "dsp_pruned": self.dsp_pruned,
            "bound_pruned": self.bound_pruned,
            "feasible": self.feasible,
            "improvements": self.improvements,
        }

    def publish(self) -> None:
        """Merge this scan's totals into the global registry counters."""
        if not config.enabled():
            return
        REGISTRY.counter("dse_points_scanned").inc(self.scanned)
        REGISTRY.counter("dse_points_dsp_pruned").inc(self.dsp_pruned)
        REGISTRY.counter("dse_points_bound_pruned").inc(self.bound_pruned)
        REGISTRY.counter("dse_points_feasible").inc(self.feasible)
        REGISTRY.counter("dse_incumbent_improvements").inc(self.improvements)
