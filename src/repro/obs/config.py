"""The observability master switch.

Mirrors :mod:`repro.fhe.fastpath`: one module-level flag, flipped either
globally (:func:`enable` / :func:`disable` / :func:`set_enabled`) or for a
scope (:func:`observed`).  The flag gates everything *expensive* — span
timing, histograms, gauges; plain counters (e.g. the NTT transform counter
behind ``TRANSFORM_STATS``) stay live regardless because they are a few
integer adds per kernel call and pre-date this subsystem.

All transitions go through a lock so concurrent flips (the parallel DSE
worker path forks process state) cannot interleave a read-modify-write.
The hot-path read itself is a single unlocked module-attribute load —
reading a Python bool is atomic, and observability toggles are not
expected mid-operation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

_lock = threading.Lock()
_enabled = False


def enabled() -> bool:
    """Whether observability (tracing, histograms, gauges) is active."""
    return _enabled


def set_enabled(on: bool) -> bool:
    """Flip the master switch; returns the new state."""
    global _enabled
    with _lock:
        _enabled = bool(on)
    return _enabled


def enable() -> bool:
    return set_enabled(True)


def disable() -> bool:
    return set_enabled(False)


@contextmanager
def observed(on: bool = True) -> Iterator[bool]:
    """Temporarily set the master switch (restores the prior state on exit)."""
    global _enabled
    with _lock:
        previous = _enabled
        _enabled = bool(on)
    try:
        yield _enabled
    finally:
        with _lock:
            _enabled = previous
