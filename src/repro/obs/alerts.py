"""Declarative alerting over the time-series store.

Two rule shapes, both evaluated inside the virtual-time serving loops
(so a replay of the same seeded traffic fires the same alerts at the
same virtual instants):

* **threshold** — an aggregate of one series over a window compared
  against a constant, with an optional ``for_s`` hold time (the
  condition must stay true that long before the alert fires — the
  Prometheus ``for:`` clause);
* **burn_rate** — the SRE multi-window error-budget rule over an SLO
  miss fraction: ``miss = increase(bad) / increase(total)`` is computed
  over a *fast* and a *slow* window and the alert fires only when
  **both** exceed their burn-rate multiple of the budget.  The fast
  window makes the alert prompt, the slow window keeps a short blip
  from paging.

Series references are snapshot-style keys (``name{label=value,...}``)
and may be ``fnmatch`` globs; globbed counters are summed, which is how
one rule covers ``serve_requests_total{outcome=*}``.

Every state transition is exactly-once: inactive→active emits one
``alert_firing`` flight event, bumps ``alerts_fired_total{alert=...}``
and sets ``alert_active{alert=...}`` to 1; active→inactive mirrors it
with ``alert_resolved``.  The gauges ride the normal OpenMetrics export,
so a scrape shows which alerts are live.  Rules load from a JSON file
(``repro serve --alerts RULES.json``) or construct directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from . import config
from .flight import FLIGHT
from .registry import REGISTRY, MetricsRegistry
from .timeseries import TIMESERIES, TimeSeriesStore

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_AGGREGATES = ("avg", "last", "rate", "max", "p50", "p95", "p99")


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule; ``kind`` selects which fields apply."""

    name: str
    kind: str = "threshold"
    # -- threshold fields --
    series: str = ""
    op: str = ">"
    threshold: float = 0.0
    window_s: float = 10.0
    aggregate: str = "avg"
    for_s: float = 0.0
    # -- burn-rate fields --
    bad_series: tuple[str, ...] = ()
    total_series: tuple[str, ...] = ()
    budget: float = 0.01
    fast_window_s: float = 10.0
    slow_window_s: float = 60.0
    fast_burn: float = 14.0
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule name must be non-empty")
        if self.kind not in ("threshold", "burn_rate"):
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if self.kind == "threshold":
            if not self.series:
                raise ValueError(f"rule {self.name!r}: series required")
            if self.op not in _OPS:
                raise ValueError(f"rule {self.name!r}: op must be one of "
                                 f"{sorted(_OPS)}")
            if self.aggregate not in _AGGREGATES:
                raise ValueError(f"rule {self.name!r}: aggregate must be "
                                 f"one of {_AGGREGATES}")
            if self.window_s <= 0 or self.for_s < 0:
                raise ValueError(f"rule {self.name!r}: window_s must be > 0 "
                                 "and for_s >= 0")
        else:
            if not self.bad_series or not self.total_series:
                raise ValueError(f"rule {self.name!r}: bad_series and "
                                 "total_series required")
            if not 0 < self.budget < 1:
                raise ValueError(f"rule {self.name!r}: budget in (0, 1)")
            if self.fast_window_s <= 0 or \
                    self.slow_window_s < self.fast_window_s:
                raise ValueError(f"rule {self.name!r}: need 0 < "
                                 "fast_window_s <= slow_window_s")
            if self.fast_burn <= 0 or self.slow_burn <= 0:
                raise ValueError(f"rule {self.name!r}: burn rates > 0")

    def as_dict(self) -> dict[str, Any]:
        if self.kind == "threshold":
            return {
                "name": self.name, "kind": self.kind,
                "series": self.series, "op": self.op,
                "threshold": self.threshold, "window_s": self.window_s,
                "aggregate": self.aggregate, "for_s": self.for_s,
            }
        return {
            "name": self.name, "kind": self.kind,
            "bad_series": list(self.bad_series),
            "total_series": list(self.total_series),
            "budget": self.budget,
            "fast_window_s": self.fast_window_s,
            "slow_window_s": self.slow_window_s,
            "fast_burn": self.fast_burn, "slow_burn": self.slow_burn,
        }


def rule_from_dict(obj: dict[str, Any]) -> AlertRule:
    """Build a rule from a RULES.json entry (unknown keys rejected)."""
    known = {f for f in AlertRule.__dataclass_fields__}
    extra = set(obj) - known
    if extra:
        raise ValueError(f"unknown rule field(s): {sorted(extra)}")
    kwargs = dict(obj)
    for key in ("bad_series", "total_series"):
        if key in kwargs:
            kwargs[key] = tuple(kwargs[key])
    return AlertRule(**kwargs)


def load_rules(path: str | Path) -> tuple[AlertRule, ...]:
    """Parse a RULES.json file: ``{"rules": [...]}`` or a bare list."""
    obj = json.loads(Path(path).read_text())
    entries = obj["rules"] if isinstance(obj, dict) else obj
    if not isinstance(entries, list):
        raise ValueError("RULES.json must be a list or {'rules': [...]}")
    rules = tuple(rule_from_dict(e) for e in entries)
    names = [r.name for r in rules]
    if len(names) != len(set(names)):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate rule name(s): {dupes}")
    return rules


@dataclass
class AlertEvent:
    """One firing or resolution, in virtual time."""

    at_s: float
    alert: str
    state: str  # firing | resolved
    value: float

    def as_dict(self) -> dict[str, Any]:
        return {"at_s": self.at_s, "alert": self.alert,
                "state": self.state, "value": self.value}


@dataclass
class _RuleState:
    active: bool = False
    #: First instant the raw condition held continuously (for_s clock).
    pending_since: float | None = None
    fired: int = 0
    resolved: int = 0
    last_value: float = 0.0
    events: list[AlertEvent] = field(default_factory=list)


class AlertEngine:
    """Evaluate rules against a time-series store, exactly-once events.

    The loops call :meth:`tick` at every interesting virtual instant;
    the engine samples the store (cadence-gated) and re-evaluates only
    when a *new* sample landed — double ticks at the same instant, or
    two loops sharing the global store, cannot double-fire a rule.
    All of it is a no-op while observability is disabled, keeping the
    disabled path at one flag check like every probe.
    """

    def __init__(
        self,
        rules: tuple[AlertRule, ...] | list[AlertRule],
        store: TimeSeriesStore | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.rules = tuple(rules)
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate rule name(s): {dupes}")
        self.store = TIMESERIES if store is None else store
        self.registry = REGISTRY if registry is None else registry
        self._states = {r.name: _RuleState() for r in self.rules}
        self._evaluated_mark = -1

    # -- driving --------------------------------------------------------------

    def tick(self, now_s: float) -> None:
        """Sample (cadence-gated) and evaluate on each new sample."""
        if not config.enabled():
            return
        self.store.maybe_sample(now_s)
        mark = self.store.sample_count
        if mark != self._evaluated_mark:
            self._evaluated_mark = mark
            self.evaluate(now_s)

    def evaluate(self, now_s: float) -> list[AlertEvent]:
        """Evaluate every rule at ``now_s``; returns new transitions."""
        transitions: list[AlertEvent] = []
        for rule in self.rules:
            state = self._states[rule.name]
            raw, value = self._condition(rule, now_s)
            state.last_value = value
            # The for_s clock: raw condition must hold continuously.
            if raw:
                if state.pending_since is None:
                    state.pending_since = now_s
                held = now_s - state.pending_since
                active = held >= self._for_s(rule)
            else:
                state.pending_since = None
                active = False
            if active and not state.active:
                state.active = True
                state.fired += 1
                event = AlertEvent(now_s, rule.name, "firing", value)
                state.events.append(event)
                transitions.append(event)
                self.registry.gauge("alert_active", alert=rule.name).set(1)
                self.registry.counter(
                    "alerts_fired_total", alert=rule.name
                ).inc()
                FLIGHT.record(
                    "alert_firing", alert=rule.name, at_s=now_s,
                    value=value, kind_of_rule=rule.kind,
                )
            elif not active and state.active:
                state.active = False
                state.resolved += 1
                event = AlertEvent(now_s, rule.name, "resolved", value)
                state.events.append(event)
                transitions.append(event)
                self.registry.gauge("alert_active", alert=rule.name).set(0)
                self.registry.counter(
                    "alerts_resolved_total", alert=rule.name
                ).inc()
                FLIGHT.record(
                    "alert_resolved", alert=rule.name, at_s=now_s,
                    value=value, kind_of_rule=rule.kind,
                )
        return transitions

    @staticmethod
    def _for_s(rule: AlertRule) -> float:
        return rule.for_s if rule.kind == "threshold" else 0.0

    # -- rule conditions ------------------------------------------------------

    def _condition(
        self, rule: AlertRule, now_s: float
    ) -> tuple[bool, float]:
        if rule.kind == "threshold":
            value = self._aggregate(rule, now_s)
            return _OPS[rule.op](value, rule.threshold), value
        fast = self._miss_fraction(rule, rule.fast_window_s, now_s)
        slow = self._miss_fraction(rule, rule.slow_window_s, now_s)
        firing = (
            fast >= rule.fast_burn * rule.budget
            and slow >= rule.slow_burn * rule.budget
        )
        # The fast-window burn is the value dashboards care about.
        return firing, fast / rule.budget if rule.budget else 0.0

    def _aggregate(self, rule: AlertRule, now_s: float) -> float:
        store, key, w = self.store, rule.series, rule.window_s
        if rule.aggregate == "avg":
            return store.avg_over(key, w, now_s)
        if rule.aggregate == "last":
            last = store.last(key, now_s)
            return 0.0 if last is None else last
        if rule.aggregate == "rate":
            return store.rate(key, w, now_s)
        if rule.aggregate == "max":
            return store.max_over(key, w, now_s)
        p = float(rule.aggregate[1:])  # p50 / p95 / p99
        return store.quantile_over(key, p, w, now_s)

    def _sum_increase(
        self, patterns: tuple[str, ...], window_s: float, now_s: float
    ) -> float:
        total = 0.0
        for pattern in patterns:
            for key in self.store.keys(pattern):
                total += self.store.increase(key, window_s, now_s)
        return total

    def _miss_fraction(
        self, rule: AlertRule, window_s: float, now_s: float
    ) -> float:
        bad = self._sum_increase(rule.bad_series, window_s, now_s)
        total = self._sum_increase(rule.total_series, window_s, now_s)
        return bad / total if total > 0 else 0.0

    # -- reporting ------------------------------------------------------------

    def active(self) -> list[str]:
        return [r.name for r in self.rules if self._states[r.name].active]

    def counts(self) -> dict[str, dict[str, int]]:
        """``{rule: {"fired": n, "resolved": m}}`` for every rule."""
        return {
            r.name: {
                "fired": self._states[r.name].fired,
                "resolved": self._states[r.name].resolved,
            }
            for r in self.rules
        }

    def events(self, alert: str | None = None) -> list[AlertEvent]:
        """Every transition so far, in firing order."""
        out: list[AlertEvent] = []
        for r in self.rules:
            if alert is not None and r.name != alert:
                continue
            out.extend(self._states[r.name].events)
        out.sort(key=lambda e: e.at_s)
        return out

    def summary(self) -> dict[str, Any]:
        """JSON-ready session summary for CLIs and benches."""
        return {
            "rules": [r.as_dict() for r in self.rules],
            "active": self.active(),
            "counts": self.counts(),
            "events": [e.as_dict() for e in self.events()],
        }
