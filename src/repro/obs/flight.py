"""Flight recorder: the last N structured events, always at hand.

Metrics answer "how much"; traces answer "how long"; neither answers
"what exactly happened just before this request failed".  The flight
recorder does: a thread-safe, bounded ring buffer of structured events —
admissions, dispatches, expiries, cache hits/misses, DSE incumbents,
pipeline stage handoffs — cheap enough to leave on in production and
small enough to dump whole.

Each event is one JSON-ready dict::

    {"seq": 1042, "ts_s": 12.48, "kind": "dispatch",
     "lanes": 7, "mode": "batched", ...}

``seq`` is a monotone sequence number (gaps reveal ring overwrite),
``ts_s`` is seconds since the recorder's epoch.  :meth:`FlightRecorder
.dump_jsonl` writes the surviving window as JSON Lines;
:func:`dump_on_error` wraps a block so the window is written *before*
the exception propagates — the post-mortem for a failed request.

Recording goes through :func:`repro.obs.probes.record_flight`, which is
gated on the observability master switch like every other probe; the
recorder itself is switch-agnostic so tests and embedders can drive it
directly.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

#: Default ring capacity: enough for a few hundred requests' worth of
#: admission/dispatch/handoff events without holding a serving day hostage.
DEFAULT_CAPACITY = 1024


class FlightRecorder:
    """Bounded ring of structured events; every operation takes the lock."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._epoch = time.monotonic()

    def record(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Append one event; returns the stored dict (already stamped)."""
        now = time.monotonic() - self._epoch
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "ts_s": now, "kind": kind, **fields}
            self._ring.append(event)
        return event

    def events(
        self,
        kind: str | None = None,
        trace_id: str | None = None,
    ) -> list[dict[str, Any]]:
        """The surviving window, oldest first, optionally filtered.

        ``kind`` selects one event kind; ``trace_id`` selects the events
        of one request's journey — an event matches when its own
        ``trace_id`` field equals it, or its ``trace_ids`` batch list
        contains it (batch dispatches and stage handoffs carry the
        lists).  Both filters compose, so "this request's expiries" is
        one call instead of a ring replay.
        """
        with self._lock:
            window = list(self._ring)
        if kind is not None:
            window = [e for e in window if e["kind"] == kind]
        if trace_id is not None:
            window = [
                e for e in window
                if e.get("trace_id") == trace_id
                or trace_id in e.get("trace_ids", ())
            ]
        return window

    def clear(self) -> None:
        """Drop all events and restart the clock (sequence keeps rising,
        so post-clear events remain distinguishable in merged dumps)."""
        with self._lock:
            self._ring.clear()
            self._epoch = time.monotonic()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (``> len(self)`` once the ring wrapped)."""
        with self._lock:
            return self._seq

    def dump_jsonl(
        self,
        path: str | Path,
        kind: str | None = None,
        trace_id: str | None = None,
    ) -> int:
        """Write the surviving window as JSON Lines; returns event count.

        Takes the same filters as :meth:`events`, so a post-mortem can
        dump just one request's journey or just the alert transitions.
        """
        events = self.events(kind=kind, trace_id=trace_id)
        lines = "".join(
            json.dumps(e, sort_keys=True, default=str) + "\n" for e in events
        )
        Path(path).write_text(lines)
        return len(events)


#: The process-global recorder every probe records into.
FLIGHT = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return FLIGHT


@contextmanager
def dump_on_error(
    path: str | Path, recorder: FlightRecorder | None = None
) -> Iterator[FlightRecorder]:
    """Dump the flight window to ``path`` if the block raises.

    The dump happens before the exception propagates, so the last N
    events survive even when the caller's process is about to die::

        with dump_on_error("crash_flight.jsonl"):
            service.submit(payload).result()
    """
    recorder = FLIGHT if recorder is None else recorder
    try:
        yield recorder
    except BaseException:
        try:
            recorder.record("dump_on_error", path=str(path))
            recorder.dump_jsonl(path)
        except OSError:
            pass  # never shadow the original failure with a dump failure
        raise
