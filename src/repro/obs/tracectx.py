"""Request-scoped trace context: trace IDs that follow a request around.

A *trace ID* names one end-to-end journey — typically one
:class:`~repro.serve.request.InferenceRequest` from admission through
batching, execution (possibly across several pipeline stages) and
response.  Every span or virtual event recorded while a trace context is
active carries the ID in its Chrome-trace ``args``, so filtering the
exported trace on ``trace_id`` yields one connected flame per request
even when its pieces ran on different worker threads (or in virtual
time, on no thread at all).

The context is a thread-local *stack*: nested :func:`trace_context`
blocks shadow the outer ID and restore it on exit, mirroring span
nesting.  Crossing a thread boundary is explicit — the serving layer
reads ``request.trace_id`` and re-enters the context on the worker
thread — because implicit propagation through a thread pool would tie
this module to one executor implementation.

ID generation is a single atomic ``itertools.count`` step (no lock, no
randomness), giving process-unique, human-readable IDs like
``"t-000042"``.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Iterator

_sequence = itertools.count(1)
_local = threading.local()


def new_trace_id(prefix: str = "t") -> str:
    """A process-unique trace ID (atomic counter; safe without a lock)."""
    return f"{prefix}-{next(_sequence):06d}"


def _stack() -> list[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_trace_id() -> str | None:
    """The innermost active trace ID on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def trace_context(trace_id: str | None) -> Iterator[str | None]:
    """Activate ``trace_id`` for the block (no-op when ``None``).

    Spans closed inside the block pick the ID up automatically; see
    :meth:`repro.obs.tracing.Tracer._pop`.
    """
    if trace_id is None:
        yield None
        return
    stack = _stack()
    stack.append(trace_id)
    try:
        yield trace_id
    finally:
        stack.pop()
