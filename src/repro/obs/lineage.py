"""Per-ciphertext provenance: lineage IDs, op DAGs and noise accounting.

The paper fixes ``L = 7`` "to support the multiplication depth" of its
networks — an implicit noise-budget argument.  :mod:`repro.fhe.noise`
makes the budget analytic; this module makes it *attributable*: every
:class:`~repro.fhe.ciphertext.Ciphertext` that flows through an
:class:`~repro.fhe.ops.Evaluator` gets a lineage ID, and every evaluator
op records a :class:`LineageNode` — parent IDs, op type, kernel backend,
level/scale before and after, and the analytic noise-bound delta — so a
request's entire op history is a queryable DAG tied to its trace ID.

Usage::

    est = NoiseEstimator.for_context(context)
    tracker = LineageTracker(estimator=est, trace_id=new_trace_id("req"))
    with obs.observed(), lineage_context(tracker):
        model.infer(context, image)
    tracker.waterfall()          # per-layer noise spend
    tracker.dominant_spenders()  # which ops ate the headroom
    tracker.to_dot()             # Graphviz export

Recording only happens when *both* the observability master switch is on
and a tracker is installed via :func:`lineage_context` — the evaluator's
disabled path stays a single flag check (the <2 % contract of
``docs/observability.md``, re-asserted in CI with a tracker installed).

The tracker never raises into the hot path: a failed noise propagation
falls back to the parent bound and is counted in
:attr:`LineageTracker.propagation_failures`.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Iterator

from . import probes


class NoiseAuditError(RuntimeError):
    """The measured noise of a ciphertext exceeded its analytic bound.

    Raised by the debug noise audit (``HeCnn.audit_noise``): an analytic
    under-estimate means every downstream precision guarantee is void, so
    it is a hard error, never a warning.
    """


@dataclass(frozen=True)
class LineageNode:
    """One recorded evaluator op (or ciphertext source) in the DAG.

    ``noise_bits_*`` are analytic precision bounds (``-log2`` of the
    estimator's error bound); ``None`` when the tracker runs without an
    estimator or a propagation failed.
    """

    lineage_id: str
    op: str
    parents: tuple[str, ...]
    seq: int
    backend: str | None = None
    layer: str | None = None
    level_before: int | None = None
    level_after: int | None = None
    scale_before: float | None = None
    scale_after: float | None = None
    noise_bits_before: float | None = None
    noise_bits_after: float | None = None

    @property
    def spent_bits(self) -> float | None:
        """Analytic precision this op consumed (entry minus exit bits)."""
        if self.noise_bits_before is None or self.noise_bits_after is None:
            return None
        return self.noise_bits_before - self.noise_bits_after

    def as_dict(self) -> dict[str, Any]:
        return {
            "lineage_id": self.lineage_id,
            "op": self.op,
            "parents": list(self.parents),
            "seq": self.seq,
            "backend": self.backend,
            "layer": self.layer,
            "level_before": self.level_before,
            "level_after": self.level_after,
            "scale_before": self.scale_before,
            "scale_after": self.scale_after,
            "noise_bits_before": self.noise_bits_before,
            "noise_bits_after": self.noise_bits_after,
        }


class HeadroomWatch:
    """Transition-based noise-headroom threshold watch.

    Publishes a ``noise_headroom_bits`` gauge on every observation and
    records exactly one ``noise_headroom_violation`` flight event per
    ok→below crossing (no flapping spam), carrying the lineage ID of the
    offending ciphertext so ``dump_on_error`` post-mortems can name it.
    """

    def __init__(self, threshold_bits: float) -> None:
        self.threshold_bits = float(threshold_bits)
        self.crossings = 0
        self._violated = False

    def observe(
        self,
        bits: float,
        layer: str | None = None,
        lineage_id: str | None = None,
    ) -> None:
        probes.record_noise_headroom(bits, layer=layer or "")
        below = bits < self.threshold_bits
        if below and not self._violated:
            self.crossings += 1
            probes.record_flight(
                "noise_headroom_violation",
                layer=layer,
                lineage_id=lineage_id,
                headroom_bits=bits,
                threshold_bits=self.threshold_bits,
            )
        self._violated = below


class LineageTracker:
    """Request-scoped ciphertext provenance recorder.

    Parameters
    ----------
    estimator:
        A :class:`~repro.fhe.noise.NoiseEstimator` (or compatible) used
        to propagate analytic noise bounds per op; without one the DAG
        still records structure, levels and scales, but no noise bits.
    trace_id:
        The request's trace ID (:func:`repro.obs.tracectx.new_trace_id`),
        tying the lineage DAG to the request's span tree.
    message_bound:
        Plaintext magnitude bound assumed for source ciphertexts.
    headroom_threshold_bits:
        When set, layer boundaries below this many analytic bits emit a
        flight-recorder violation event (one per crossing).
    """

    def __init__(
        self,
        estimator=None,
        trace_id: str | None = None,
        message_bound: float = 1.0,
        headroom_threshold_bits: float | None = None,
    ) -> None:
        self.estimator = estimator
        self.trace_id = trace_id
        self.message_bound = message_bound
        self.nodes: dict[str, LineageNode] = {}
        self.propagation_failures = 0
        self._bounds: dict[str, Any] = {}
        self._next_id = 1
        self._seq = 0
        self._layer: str | None = None
        #: ``(boundary_name, [lineage ids], worst_bits, worst_id)`` per
        #: layer boundary; index 0 is the encrypted input.
        self._boundaries: list[
            tuple[str, list[str], float | None, str | None]
        ] = []
        self._watch = (
            HeadroomWatch(headroom_threshold_bits)
            if headroom_threshold_bits is not None
            else None
        )

    # -- identity ---------------------------------------------------------------

    def ensure_id(self, ct, op: str = "Source") -> str:
        """The ciphertext's lineage ID, assigning one (and a source node)
        if this tracker has not seen it before."""
        lid = getattr(ct, "_lineage_id", None)
        if lid is not None and lid in self.nodes:
            return lid
        lid = f"ct-{self._next_id:06d}"
        self._next_id += 1
        object.__setattr__(ct, "_lineage_id", lid)
        bound = self._fresh_bound(ct)
        self._seq += 1
        self.nodes[lid] = LineageNode(
            lineage_id=lid,
            op=op,
            parents=(),
            seq=self._seq,
            layer=self._layer,
            level_after=ct.level,
            scale_after=ct.scale,
            noise_bits_after=_bits(bound),
        )
        self._bounds[lid] = bound
        return lid

    def _fresh_bound(self, ct):
        if self.estimator is None:
            return None
        try:
            bound = self.estimator.fresh(self.message_bound, level=ct.level)
            if bound.scale != ct.scale:
                bound = replace(bound, scale=ct.scale)
            return bound
        except Exception:
            self.propagation_failures += 1
            return None

    def bound_of(self, ct) -> Any:
        """The tracked analytic bound of a ciphertext (``None`` unknown)."""
        lid = getattr(ct, "_lineage_id", None)
        return self._bounds.get(lid) if lid is not None else None

    def bits_of(self, ct) -> float | None:
        """Tracked analytic precision bits of a ciphertext."""
        return _bits(self.bound_of(ct))

    # -- recording --------------------------------------------------------------

    def observe(self, op_name: str, evaluator, args, kwargs, out) -> None:
        """Record one evaluator op.  Called by the ``_probed`` wrapper in
        :mod:`repro.fhe.ops` (obs-enabled path only)."""
        from ..fhe.ciphertext import Ciphertext, Plaintext

        if not isinstance(out, Ciphertext):
            return
        operands = list(args) + list(kwargs.values())
        cts = [a for a in operands if isinstance(a, Ciphertext)]
        if any(out is c for c in cts):
            return  # identity early-return (e.g. rotate by 0): no new ct
        plains = [a for a in operands if isinstance(a, Plaintext)]
        parent_ids = tuple(self.ensure_id(c) for c in cts)
        parent_bounds = [self._bounds.get(pid) for pid in parent_ids]
        bound = self._propagate(
            op_name, parent_bounds, plains, evaluator, args, out
        )
        lid = f"ct-{self._next_id:06d}"
        self._next_id += 1
        object.__setattr__(out, "_lineage_id", lid)
        self._seq += 1
        self.nodes[lid] = LineageNode(
            lineage_id=lid,
            op=op_name,
            parents=parent_ids,
            seq=self._seq,
            backend=_active_backend_name(),
            layer=self._layer,
            level_before=cts[0].level if cts else None,
            level_after=out.level,
            scale_before=cts[0].scale if cts else None,
            scale_after=out.scale,
            noise_bits_before=_min_bits(parent_bounds),
            noise_bits_after=_bits(bound),
        )
        self._bounds[lid] = bound

    def _propagate(self, op_name, parent_bounds, plains, evaluator, args, out):
        """Analytic noise bound of ``out``; never raises into the hot path."""
        est = self.estimator
        if est is None or any(b is None for b in parent_bounds) \
                or not parent_bounds:
            return None
        try:
            if op_name == "CCadd" and len(parent_bounds) == 2:
                a, b = _align_levels(*parent_bounds)
                bound = est.add(a, b)
            elif op_name == "PCadd":
                bound = est.add_plain(
                    parent_bounds[0], _plain_bound(evaluator, plains)
                )
            elif op_name == "PCmult":
                bound = _multiply_plain(
                    est, parent_bounds[0],
                    _plain_bound(evaluator, plains), plains,
                )
            elif op_name == "CCmult":
                if len(parent_bounds) == 1:
                    bound = est.square(parent_bounds[0])
                else:
                    a, b = _align_levels(*parent_bounds)
                    bound = est.multiply(a, b)
            elif op_name == "Rescale":
                bound = est.rescale(parent_bounds[0])
            elif op_name in ("Relinearize", "Conjugate"):
                bound = est.key_switch(parent_bounds[0])
            elif op_name == "Rotate":
                bound = est.rotate(parent_bounds[0])
            elif op_name == "RotateFold":
                # A hoisted fold group is logically `k` rotate-and-add
                # steps: acc = acc + rotate(acc) per logical step.
                logical = int(args[1]) if len(args) > 1 else 1
                bound = parent_bounds[0]
                for _ in range(logical):
                    bound = est.add(bound, est.rotate(bound))
            else:
                bound = parent_bounds[0]
            # Sync bookkeeping fields to the ciphertext that actually came
            # out (e.g. CCadd mod-switches operands to the min level).
            if bound.level != out.level or bound.scale != out.scale:
                bound = replace(bound, level=out.level, scale=out.scale)
            return bound
        except Exception:
            self.propagation_failures += 1
            worst = min(
                (b for b in parent_bounds if b is not None),
                key=lambda b: b.error_bits,
                default=None,
            )
            if worst is None:
                return None
            return replace(worst, level=out.level, scale=out.scale)

    # -- layer attribution ------------------------------------------------------

    def set_layer(self, name: str | None) -> None:
        """Attribute subsequent ops to the named layer."""
        self._layer = name

    def begin_inputs(self, cts) -> None:
        """Register the request's input ciphertexts as the DAG roots and
        the first waterfall boundary."""
        ids = [self.ensure_id(ct, op="Input") for ct in cts]
        bits, worst = self._worst(ids)
        self._boundaries = [("input", ids, bits, worst)]

    def mark_boundary(self, layer: str, cts) -> None:
        """Record a layer-exit boundary: the waterfall row source, the
        per-layer headroom gauge and the threshold-crossing watch."""
        ids = [self.ensure_id(ct) for ct in cts]
        bits, worst = self._worst(ids)
        self._boundaries.append((layer, ids, bits, worst))
        if bits is not None:
            if self._watch is not None:
                self._watch.observe(bits, layer=layer, lineage_id=worst)
            else:
                probes.record_noise_headroom(bits, layer=layer)

    def _worst(self, ids) -> tuple[float | None, str | None]:
        """Minimum analytic bits over a boundary and the offending ID."""
        best: tuple[float, str] | None = None
        for lid in ids:
            bits = _bits(self._bounds.get(lid))
            if bits is None:
                continue
            if best is None or bits < best[0]:
                best = (bits, lid)
        return (best[0], best[1]) if best is not None else (None, None)

    # -- queries ----------------------------------------------------------------

    @property
    def headroom_crossings(self) -> int:
        return self._watch.crossings if self._watch is not None else 0

    def edges(self) -> list[tuple[str, str]]:
        """All ``(parent, child)`` edges, in recording order."""
        out = []
        for node in sorted(self.nodes.values(), key=lambda n: n.seq):
            out.extend((p, node.lineage_id) for p in node.parents)
        return out

    def roots(self) -> list[str]:
        """Lineage IDs with no parents (inputs / sources)."""
        return [
            n.lineage_id
            for n in sorted(self.nodes.values(), key=lambda n: n.seq)
            if not n.parents
        ]

    def is_connected(self) -> bool:
        """True when every recorded ciphertext is reachable from a root."""
        if not self.nodes:
            return False
        children: dict[str, list[str]] = {}
        for parent, child in self.edges():
            children.setdefault(parent, []).append(child)
        frontier = list(self.roots())
        reached = set(frontier)
        while frontier:
            nxt = []
            for lid in frontier:
                for child in children.get(lid, ()):
                    if child not in reached:
                        reached.add(child)
                        nxt.append(child)
            frontier = nxt
        return len(reached) == len(self.nodes)

    @property
    def initial_bits(self) -> float | None:
        return self._boundaries[0][2] if self._boundaries else None

    @property
    def final_bits(self) -> float | None:
        return self._boundaries[-1][2] if self._boundaries else None

    def waterfall(self) -> list[dict[str, Any]]:
        """Per-layer noise spend between boundaries.

        ``sum(row["spent_bits"])`` equals ``initial_bits - final_bits``
        exactly — the waterfall reconciles to the final analytic bound.
        """
        rows = []
        for prev, cur in zip(self._boundaries, self._boundaries[1:]):
            spent = None
            if prev[2] is not None and cur[2] is not None:
                spent = prev[2] - cur[2]
            rows.append({
                "layer": cur[0],
                "entry_bits": prev[2],
                "exit_bits": cur[2],
                "spent_bits": spent,
                "worst_lineage_id": cur[3],
            })
        return rows

    def dominant_spenders(self, n: int = 5) -> list[dict[str, Any]]:
        """The ``n`` recorded ops that consumed the most analytic bits."""
        spenders = [
            node for node in self.nodes.values()
            if node.spent_bits is not None and node.parents
        ]
        spenders.sort(key=lambda node: (-node.spent_bits, node.seq))
        return [
            {
                "lineage_id": node.lineage_id,
                "op": node.op,
                "layer": node.layer,
                "spent_bits": node.spent_bits,
                "exit_bits": node.noise_bits_after,
            }
            for node in spenders[:n]
        ]

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes.values():
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    # -- export -----------------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        """JSON-ready record of the full DAG plus its noise accounting."""
        return {
            "trace_id": self.trace_id,
            "node_count": len(self.nodes),
            "edge_count": len(self.edges()),
            "connected": self.is_connected(),
            "initial_bits": self.initial_bits,
            "final_bits": self.final_bits,
            "propagation_failures": self.propagation_failures,
            "op_counts": self.op_counts(),
            "waterfall": self.waterfall(),
            "dominant_spenders": self.dominant_spenders(),
            "nodes": [
                node.as_dict()
                for node in sorted(self.nodes.values(), key=lambda n: n.seq)
            ],
        }

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the DAG, clustered by layer."""
        lines = [
            "digraph lineage {",
            '  rankdir="LR";',
            "  node [shape=box, fontsize=9];",
        ]
        by_layer: dict[str, list[LineageNode]] = {}
        for node in sorted(self.nodes.values(), key=lambda n: n.seq):
            by_layer.setdefault(node.layer or "input", []).append(node)
        for i, (layer, nodes) in enumerate(by_layer.items()):
            lines.append(f"  subgraph cluster_{i} {{")
            lines.append(f'    label="{_dot_escape(layer)}";')
            for node in nodes:
                label = f"{node.lineage_id}\\n{_dot_escape(node.op)}"
                if node.noise_bits_after is not None:
                    label += f"\\n{node.noise_bits_after:.1f} bits"
                lines.append(
                    f'    "{node.lineage_id}" [label="{label}"];'
                )
            lines.append("  }")
        for parent, child in self.edges():
            lines.append(f'  "{parent}" -> "{child}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Ambient tracker (thread-local, like the trace-ID stack)
# ---------------------------------------------------------------------------

_STATE = threading.local()


def current_tracker() -> LineageTracker | None:
    """The thread's installed tracker, or ``None``."""
    return getattr(_STATE, "tracker", None)


@contextmanager
def lineage_context(tracker: LineageTracker) -> Iterator[LineageTracker]:
    """Install ``tracker`` as the thread's ambient lineage recorder."""
    prev = current_tracker()
    _STATE.tracker = tracker
    try:
        yield tracker
    finally:
        _STATE.tracker = prev


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _bits(bound) -> float | None:
    if bound is None:
        return None
    bits = bound.error_bits
    return bits if math.isfinite(bits) else None


def _min_bits(bounds) -> float | None:
    vals = [b for b in (_bits(bound) for bound in bounds) if b is not None]
    return min(vals) if vals else None


def _align_levels(a, b):
    """Mirror the evaluator's implicit mod-switch: binary ops align both
    operands to the minimum level before combining (scale unchanged)."""
    level = min(a.level, b.level)
    if a.level != level:
        a = replace(a, level=level)
    if b.level != level:
        b = replace(b, level=level)
    return a, b


def _plain_bound(evaluator, plains) -> float:
    """Magnitude bound of the op's plaintext operand (decoded)."""
    if not plains:
        return 1.0
    values = evaluator.context.decode(plains[0])
    peak = float(abs(values).max()) if len(values) else 0.0
    return max(peak, 1e-12)


def _multiply_plain(est, a, plain_bound: float, plains):
    """PCmult propagation generalized to the plaintext's actual scale.

    ``NoiseEstimator.multiply_plain`` assumes the scale-stationary
    encoding (plaintext at the level's last prime); the evaluator accepts
    any plaintext scale, so the encoding-error term uses the real one.
    """
    pt_scale = plains[0].scale if plains else est.primes[a.level - 1]
    encode_err = 2 * math.sqrt(est.n) / pt_scale
    return replace(
        a,
        error=a.error * plain_bound + encode_err * a.message,
        message=a.message * plain_bound,
        scale=a.scale * pt_scale,
    )


def _active_backend_name() -> str | None:
    try:
        from ..fhe import kernels

        return kernels.active_backend().name
    except Exception:  # pragma: no cover - backend registry unavailable
        return None


def _dot_escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
