"""OpenMetrics text export of the metrics registry.

:func:`render_openmetrics` turns the process-global
:class:`~repro.obs.registry.MetricsRegistry` into the Prometheus /
OpenMetrics text exposition format, so any standard scrape pipeline can
ingest the reproduction's telemetry without this repo growing a
dependency:

* counters render as ``counter`` families (the mandatory ``_total``
  sample suffix is added exactly once, whether or not the registry name
  already carries it);
* gauges render as ``gauge`` families;
* histograms render as ``summary`` families — quantile samples from the
  (possibly reservoir-sampled) percentiles plus exact ``_count`` /
  ``_sum`` samples.

:func:`validate_openmetrics` is a strict line-level checker for the
subset of the grammar this exporter emits; the golden-file test pins the
exact rendering and CI validates every exported snapshot with it.

:class:`Snapshotter` writes the rendering to a file on a fixed cadence
(atomic rename, so scrapers never read a torn snapshot) — the
zero-dependency stand-in for an HTTP ``/metrics`` endpoint.
"""

from __future__ import annotations

import math
import os
import re
import threading
from pathlib import Path
from typing import Any

from .registry import REGISTRY, MetricsRegistry

_QUANTILES = ((0.5, 50.0), (0.95, 95.0), (0.99, 99.0))

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _sanitize_name(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def _sanitize_label(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not _LABEL_NAME_OK.match(out):
        out = "_" + out
    return out


def _escape(value: Any) -> str:
    text = str(value)
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    out = float(value)
    if math.isnan(out):
        return "NaN"
    if math.isinf(out):
        return "+Inf" if out > 0 else "-Inf"
    return repr(out)


def _dedupe(name: str, used: set[str]) -> str:
    """``name``, suffixed ``_2``/``_3``/... if sanitization collided.

    Distinct raw names can sanitize to the same string (``layer-a`` and
    ``layer a`` both become ``layer_a``); emitting both verbatim would
    produce a sample with duplicate label names or a family declared
    twice — both rejected by :func:`validate_openmetrics`.  Insertion
    order makes the suffixes deterministic.
    """
    if name not in used:
        used.add(name)
        return name
    for i in range(2, len(used) + 2):
        candidate = f"{name}_{i}"
        if candidate not in used:
            used.add(candidate)
            return candidate
    raise AssertionError("unreachable: more suffixes than names")


def _labelset(labels: tuple[tuple[str, Any], ...],
              extra: tuple[tuple[str, str], ...] = ()) -> str:
    # Reserve the exporter-owned names (e.g. ``quantile``) first so a
    # user label that sanitizes onto one gets suffixed, not the reverse.
    used = {k for k, _ in extra}
    parts = [
        f'{_dedupe(_sanitize_label(k), used)}="{_escape(v)}"'
        for k, v in labels
    ] + [f'{k}="{v}"' for k, v in extra]
    return "{" + ",".join(parts) + "}" if parts else ""


def _prefix_selected(
    name: str,
    include_prefixes: tuple[str, ...] | None,
    exclude_prefixes: tuple[str, ...],
) -> bool:
    """Include wins only when the raw name clears both filters."""
    if include_prefixes is not None and not any(
        name.startswith(p) for p in include_prefixes
    ):
        return False
    return not any(name.startswith(p) for p in exclude_prefixes)


def render_openmetrics(
    registry: MetricsRegistry | None = None,
    include_prefixes: tuple[str, ...] | list[str] | None = None,
    exclude_prefixes: tuple[str, ...] | list[str] = (),
) -> str:
    """The registry in OpenMetrics text format (ends with ``# EOF``).

    ``include_prefixes`` / ``exclude_prefixes`` filter families by their
    *raw* registry name prefix (before sanitization): ``None`` includes
    everything, and exclusion beats inclusion.  The point is scoping
    high-cardinality families — per-tenant ``cost_*`` gauges — out of
    small exports without losing them from the registry.
    """
    registry = REGISTRY if registry is None else registry
    include = tuple(include_prefixes) if include_prefixes is not None \
        else None
    exclude = tuple(exclude_prefixes)
    families: dict[tuple[str, str], list[Any]] = {}
    for (kind, name, _labels), metric in registry.items():
        if not _prefix_selected(name, include, exclude):
            continue
        families.setdefault((kind, name), []).append(metric)

    lines: list[str] = []
    used_families: set[str] = set()
    for (kind, name), metrics in families.items():
        base = _sanitize_name(name)
        if kind == "counter":
            base = base[: -len("_total")] if base.endswith("_total") else base
        # Distinct registry names can sanitize to one family name (and a
        # gauge can collide with a counter or histogram family) — each
        # final family name must be declared exactly once.
        base = _dedupe(base, used_families)
        if kind == "counter":
            family = base
            lines.append(f"# TYPE {family} counter")
            for m in metrics:
                lines.append(
                    f"{family}_total{_labelset(m.labels)} "
                    f"{_format_value(m.value)}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            for m in metrics:
                lines.append(
                    f"{base}{_labelset(m.labels)} {_format_value(m.value)}"
                )
        else:  # histogram -> summary
            lines.append(f"# TYPE {base} summary")
            for m in metrics:
                if m.count:
                    for q, p in _QUANTILES:
                        labels = _labelset(
                            m.labels, extra=(("quantile", str(q)),)
                        )
                        lines.append(
                            f"{base}{labels} "
                            f"{_format_value(m.percentile(p))}"
                        )
                lines.append(
                    f"{base}_count{_labelset(m.labels)} {m.count}"
                )
                lines.append(
                    f"{base}_sum{_labelset(m.labels)} "
                    f"{_format_value(m.total)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Validation (the subset of the OpenMetrics ABNF this exporter emits)
# ---------------------------------------------------------------------------

_LABEL_RE = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    rf"(?:\{{(?P<labels>{_LABEL_RE}(?:,{_LABEL_RE})*)\}})?"
    r" (?P<value>[-+]?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|Inf)|NaN)$"
)
_LABEL_ITEM_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
)
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
    r"(?P<type>counter|gauge|summary|histogram|info|stateset|unknown)$"
)
_SUFFIXES = {
    "counter": ("_total", "_created"),
    "summary": ("", "_count", "_sum", "_created"),
    "histogram": ("_bucket", "_count", "_sum", "_created"),
}


def validate_openmetrics(text: str) -> None:
    """Raise ``ValueError`` unless ``text`` is well-formed OpenMetrics.

    Checks line shapes, family/sample name agreement (counter samples
    must carry ``_total``; summary samples the summary suffixes), unique
    family declarations, unique label names within each sample, and the
    mandatory final ``# EOF``.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    seen_families: set[str] = set()
    family: str | None = None
    family_type = "unknown"
    for i, line in enumerate(lines[:-1], start=1):
        if line.startswith("#"):
            m = _TYPE_RE.match(line)
            if m is None:
                if line.startswith("# HELP ") or line.startswith("# UNIT "):
                    continue
                raise ValueError(f"line {i}: malformed comment {line!r}")
            family = m.group("name")
            family_type = m.group("type")
            if family in seen_families:
                raise ValueError(
                    f"line {i}: family {family!r} declared twice"
                )
            seen_families.add(family)
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {i}: malformed sample {line!r}")
        name = m.group("name")
        labels_text = m.group("labels")
        if labels_text:
            label_names = _LABEL_ITEM_RE.findall(labels_text)
            if len(label_names) != len(set(label_names)):
                dupes = sorted(
                    {n for n in label_names if label_names.count(n) > 1}
                )
                raise ValueError(
                    f"line {i}: duplicate label name(s) {dupes} in sample"
                )
        if family is None:
            raise ValueError(f"line {i}: sample before any # TYPE")
        suffixes = _SUFFIXES.get(family_type, ("",))
        if not any(
            name == family + s for s in suffixes
        ) and name != family:
            raise ValueError(
                f"line {i}: sample {name!r} does not belong to "
                f"family {family!r} ({family_type})"
            )
        if family_type == "counter" and not name.endswith("_total") \
                and not name.endswith("_created"):
            raise ValueError(
                f"line {i}: counter sample {name!r} lacks '_total'"
            )


# ---------------------------------------------------------------------------
# Periodic snapshotter
# ---------------------------------------------------------------------------


class Snapshotter:
    """Write the OpenMetrics rendering to a file every ``interval_s``.

    Writes go to ``<path>.tmp`` then ``os.replace`` onto ``path``, so a
    concurrent reader always sees a complete exposition.  Use as a
    context manager around a serving session, or drive manually with
    :meth:`write_snapshot`.
    """

    def __init__(
        self,
        path: str | Path,
        interval_s: float = 30.0,
        registry: MetricsRegistry | None = None,
        include_prefixes: tuple[str, ...] | list[str] | None = None,
        exclude_prefixes: tuple[str, ...] | list[str] = (),
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.path = Path(path)
        self.interval_s = interval_s
        self.registry = REGISTRY if registry is None else registry
        self.include_prefixes = (
            tuple(include_prefixes) if include_prefixes is not None else None
        )
        self.exclude_prefixes = tuple(exclude_prefixes)
        self.snapshots_written = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def write_snapshot(self) -> Path:
        """Render and atomically publish one snapshot; returns the path."""
        text = render_openmetrics(
            self.registry,
            include_prefixes=self.include_prefixes,
            exclude_prefixes=self.exclude_prefixes,
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, self.path)
        self.snapshots_written += 1
        return self.path

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write_snapshot()

    def start(self) -> "Snapshotter":
        if self._thread is not None:
            raise RuntimeError("snapshotter already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-snapshotter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_snapshot: bool = True) -> None:
        """Stop the cadence; by default publish one last snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if final_snapshot:
            self.write_snapshot()

    def __enter__(self) -> "Snapshotter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
