"""Span-based tracing with Chrome-trace / Perfetto export.

A *span* is one timed region: an HE op, an HE-CNN layer, a whole
inference, a simulator pass.  Spans nest naturally through the ``with``
statement::

    with trace_span("Cnv1", category="layer"):
        with trace_span("KeySwitch", category="he_op", level=7):
            ...

Each finished span becomes one Chrome-trace *complete* event (``"ph":
"X"`` with microsecond ``ts``/``dur``), so an exported trace opens
directly in ``chrome://tracing`` or https://ui.perfetto.dev and shows the
op-inside-layer-inside-inference nesting on a per-thread track.  Span
durations are simultaneously observed into the ``span_seconds`` histogram
of the metrics registry, which is where the per-op p50/p95/p99 of the
benchmark record comes from.

When observability is disabled (:mod:`repro.obs.config`),
:func:`trace_span` returns a module-level no-op singleton — the disabled
hot path performs one flag check and allocates nothing.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from typing import Any, Callable, Iterable

from . import config, tracectx
from .registry import REGISTRY


class _NullSpan:
    """Inert stand-in handed out while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **args: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Span:
    """One active timed region; created by :func:`trace_span`."""

    __slots__ = ("name", "category", "args", "tracer", "start_ns", "duration_ns")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args = args
        self.start_ns = 0
        self.duration_ns = 0

    def set(self, **args: Any) -> None:
        """Attach (or overwrite) event arguments while the span is open."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration_ns = time.perf_counter_ns() - self.start_ns
        self.tracer._pop(self)

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9


class Tracer:
    """Collects finished spans into an in-memory Chrome-trace event list."""

    def __init__(self) -> None:
        self._events: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Dense thread-ident -> track map: masking the raw ident can
        #: alias two live worker threads onto one Perfetto row.
        self._tids: dict[int, int] = {}
        #: Common epoch so every event's ``ts`` shares one monotonic origin.
        self._epoch_ns = time.perf_counter_ns()

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._tids[ident] = len(self._tids)
        return tid

    # -- span lifecycle (internal; use trace_span) ---------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span.start_ns - self._epoch_ns) / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": 0,
            "tid": self._tid(),
        }
        args = dict(span.args) if span.args else {}
        trace_id = tracectx.current_trace_id()
        if trace_id is not None and "trace_id" not in args:
            args["trace_id"] = trace_id
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)
        REGISTRY.histogram(
            "span_seconds", category=span.category, name=span.name
        ).observe(span.duration_seconds)

    def current_span(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- virtual-time events --------------------------------------------------

    #: ``pid`` used for events with caller-supplied (virtual) timestamps,
    #: keeping them on their own process track next to wall-clock spans.
    VIRTUAL_PID = 1

    def emit(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        *,
        tid: int = 0,
        pid: int = VIRTUAL_PID,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record one complete event with explicit timestamps.

        The virtual-time schedulers (:class:`~repro.serve.scheduler
        .SlotBatchScheduler`, :class:`~repro.cluster.serving
        .ClusterService`) live on simulated clocks — there is no wall
        time to span — so they emit each request's queue-wait, batch
        execution and per-stage journey directly, in virtual seconds.
        Events land on ``pid=VIRTUAL_PID`` so Perfetto renders them as a
        separate process track with one row (``tid``) per request or
        stage.
        """
        event: dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": start_s * 1e6,
            "dur": duration_s * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    # -- inspection / export -------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        """Finished events in ``ts`` order (Chrome-trace dicts)."""
        with self._lock:
            return sorted(self._events, key=lambda e: e["ts"])

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._tids.clear()
        self._epoch_ns = time.perf_counter_ns()

    def chrome_trace(self) -> dict[str, Any]:
        """The full ``chrome://tracing`` / Perfetto JSON object."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path) -> None:
        """Write the trace to ``path`` as Perfetto-loadable JSON."""
        from pathlib import Path

        Path(path).write_text(json.dumps(self.chrome_trace(), indent=1) + "\n")

    def summary(self, category: str | None = None) -> list[dict[str, Any]]:
        """Aggregate finished spans per (category, name).

        Returns rows sorted by total time descending, each with count,
        total/mean/p50/p95 milliseconds — the plain-text counterpart of
        the per-layer latency breakdown of paper Fig. 7.
        """
        groups: dict[tuple[str, str], list[float]] = {}
        for event in self.events():
            if category is not None and event["cat"] != category:
                continue
            groups.setdefault((event["cat"], event["name"]), []).append(
                event["dur"] / 1000.0  # µs -> ms
            )
        rows = []
        for (cat, name), durs in groups.items():
            durs.sort()
            rows.append({
                "category": cat,
                "name": name,
                "count": len(durs),
                "total_ms": sum(durs),
                "mean_ms": sum(durs) / len(durs),
                "p50_ms": _interp_percentile(durs, 50),
                "p95_ms": _interp_percentile(durs, 95),
            })
        rows.sort(key=lambda r: -r["total_ms"])
        return rows

    def format_summary(self, category: str | None = None) -> str:
        """Render :meth:`summary` as an aligned plain-text table."""
        rows = self.summary(category)
        header = ["category", "name", "count", "total ms", "mean ms",
                  "p50 ms", "p95 ms"]
        cells = [header] + [
            [r["category"], r["name"], str(r["count"]),
             f"{r['total_ms']:.2f}", f"{r['mean_ms']:.3f}",
             f"{r['p50_ms']:.3f}", f"{r['p95_ms']:.3f}"]
            for r in rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in cells
        ]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


def _interp_percentile(ordered: Iterable[float], p: float) -> float:
    ordered = list(ordered)
    if not ordered:
        return 0.0
    rank = (len(ordered) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


#: The process-global tracer all spans record into.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


def trace_span(name: str, category: str = "span", **args: Any):
    """Open a timed span (context manager).

    With observability disabled this returns a shared no-op object — no
    allocation, no clock read — so instrumented hot paths cost one flag
    check.
    """
    if not config.enabled():
        return _NULL_SPAN
    return Span(TRACER, name, category, args)


def emit_virtual(
    name: str,
    category: str,
    start_s: float,
    duration_s: float,
    *,
    tid: int = 0,
    args: dict[str, Any] | None = None,
) -> None:
    """Gated module-level form of :meth:`Tracer.emit` (no-op while off)."""
    if not config.enabled():
        return
    TRACER.emit(name, category, start_s, duration_s, tid=tid, args=args)


def traced(name: str | None = None, category: str = "fn") -> Callable:
    """Decorator form of :func:`trace_span` (span per call)."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not config.enabled():
                return fn(*args, **kwargs)
            with trace_span(span_name, category=category):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
