"""Bounded time-series retention over the metrics registry.

The registry and the OpenMetrics snapshotter expose *point-in-time*
state; dashboards and alert rules need *history* — "is the p99 trending
toward its threshold", "what was the miss rate over the last minute".
:class:`TimeSeriesStore` closes that gap: on a fixed virtual-time
cadence it walks :meth:`~repro.obs.registry.MetricsRegistry.items` and
appends one point per instrument to a bounded ring, so memory stays
constant no matter how long a serving session runs.

What gets sampled per instrument kind:

* **counters** — the raw cumulative value; :meth:`TimeSeriesStore.rate`
  and :meth:`TimeSeriesStore.increase` derive per-window deltas with
  Prometheus-style reset handling (a value that *drops* between samples
  means the registry was reset mid-run; the post-reset value counts as
  the increase, never a negative delta);
* **gauges** — the last-written value;
* **histograms** — derived series per quantile (``:p50``/``:p95``/
  ``:p99``) plus the exact ``:count``.

Series are keyed exactly like :meth:`MetricsRegistry.snapshot` —
``name{label=value,...}`` — so an alert rule written against a snapshot
key reads the matching history here.  Sampling is driven *explicitly* by
the virtual-time loops (:func:`repro.obs.probes.record_timeseries_tick`);
there is no wall-clock thread, which is what makes replays exactly
reproducible.

All mutation happens under one lock, and reads of instrument values are
tolerant of a concurrent :meth:`MetricsRegistry.reset` — the hammer test
in ``tests/obs/test_timeseries.py`` races the two on purpose.
"""

from __future__ import annotations

import fnmatch
import threading
from collections import deque
from typing import Any, Iterator

from .registry import REGISTRY, MetricsRegistry

#: Default ring length per series: at the default 1 s cadence this keeps
#: 12 minutes of history — enough for any burn-rate window we evaluate.
DEFAULT_POINTS = 720

#: Default sampling cadence in (virtual) seconds.
DEFAULT_INTERVAL_S = 1.0

#: Histogram quantiles materialized as derived series.
_HIST_QUANTILES = ((50.0, "p50"), (95.0, "p95"), (99.0, "p99"))


def series_key(name: str, labels: tuple[tuple[str, Any], ...]) -> str:
    """The snapshot-style key ``name{label=value,...}`` for one series."""
    label_str = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{label_str}}}" if label_str else name


class TimeSeriesStore:
    """Bounded ring of ``(t_s, value)`` points per registry series."""

    def __init__(
        self,
        capacity: int = DEFAULT_POINTS,
        interval_s: float = DEFAULT_INTERVAL_S,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.capacity = capacity
        self.interval_s = interval_s
        self.registry = REGISTRY if registry is None else registry
        self._series: dict[str, deque[tuple[float, float]]] = {}
        self._kinds: dict[str, str] = {}
        #: First-ever sample time per series: a counter born inside a
        #: query window counts its first value as an increase from the
        #: implicit 0 every instrument starts at.  Kept separately from
        #: the ring because the ring is bounded and forgets its oldest
        #: points.
        self._births: dict[str, float] = {}
        self._lock = threading.Lock()
        self._last_sample_s: float | None = None
        self._samples_taken = 0

    # -- recording ------------------------------------------------------------

    def maybe_sample(self, now_s: float) -> bool:
        """Sample if a full cadence interval has elapsed; True if sampled.

        The virtual loops call this at every interesting moment; the
        cadence check keeps the stored history evenly spaced regardless
        of how bursty the calling loop's events are.  Time going
        backwards (two interleaved loops) is ignored rather than raised —
        the store keeps a single monotone clock.
        """
        with self._lock:
            last = self._last_sample_s
            if last is not None and now_s - last < self.interval_s:
                return False
        self.sample(now_s)
        return True

    def sample(self, now_s: float) -> None:
        """Unconditionally record one point per registry instrument."""
        points: list[tuple[str, str, float]] = []
        for (kind, name, labels), metric in self.registry.items():
            key = series_key(name, labels)
            if kind == "histogram":
                # ``count``/``total`` are exact even while the reservoir
                # samples; quantiles are reservoir estimates past the cap.
                points.append((key + ":count", "counter",
                               float(metric.count)))
                if metric.count:
                    for p, suffix in _HIST_QUANTILES:
                        points.append((f"{key}:{suffix}", "gauge",
                                       metric.percentile(p)))
            else:
                points.append((key, kind, float(metric.value)))
        with self._lock:
            if self._last_sample_s is not None \
                    and now_s < self._last_sample_s:
                return  # a second loop's older clock — keep monotone
            for key, kind, value in points:
                ring = self._series.get(key)
                if ring is None:
                    ring = deque(maxlen=self.capacity)
                    self._series[key] = ring
                    self._kinds[key] = kind
                    self._births[key] = now_s
                ring.append((now_s, value))
            self._last_sample_s = now_s
            self._samples_taken += 1

    # -- introspection --------------------------------------------------------

    @property
    def sample_count(self) -> int:
        """Sampling sweeps taken (monotone; alert engines key off this)."""
        with self._lock:
            return self._samples_taken

    @property
    def last_sample_s(self) -> float | None:
        with self._lock:
            return self._last_sample_s

    def keys(self, pattern: str | None = None) -> list[str]:
        """All series keys, optionally filtered by an fnmatch pattern."""
        with self._lock:
            keys = sorted(self._series)
        if pattern is None:
            return keys
        return [k for k in keys if fnmatch.fnmatchcase(k, pattern)]

    def kind(self, key: str) -> str | None:
        with self._lock:
            return self._kinds.get(key)

    def points(self, key: str) -> list[tuple[float, float]]:
        """The surviving ring for one series, oldest first."""
        with self._lock:
            ring = self._series.get(key)
            return list(ring) if ring is not None else []

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def clear(self) -> None:
        with self._lock:
            self._series.clear()
            self._kinds.clear()
            self._births.clear()
            self._last_sample_s = None
            self._samples_taken = 0

    # -- windowed queries -----------------------------------------------------

    def window(
        self, key: str, window_s: float, at_s: float | None = None
    ) -> list[tuple[float, float]]:
        """Points with ``at_s - window_s <= t <= at_s`` (``at_s`` defaults
        to the last sample time)."""
        pts = self.points(key)
        if not pts:
            return []
        end = pts[-1][0] if at_s is None else at_s
        start = end - window_s
        return [p for p in pts if start <= p[0] <= end]

    def last(self, key: str, at_s: float | None = None) -> float | None:
        """The most recent value at or before ``at_s`` (None if empty)."""
        pts = self.points(key)
        if at_s is not None:
            pts = [p for p in pts if p[0] <= at_s]
        return pts[-1][1] if pts else None

    def increase(
        self, key: str, window_s: float, at_s: float | None = None
    ) -> float:
        """Counter increase over the window, reset-aware.

        Sums consecutive deltas; a drop (``v2 < v1``) means the counter
        was reset mid-window, so the post-reset value ``v2`` *is* the
        increase since the reset — the Prometheus convention.  This is
        what keeps the sampler correct while a test's ``obs.reset()``
        races it.

        A series *born* inside the window (its first-ever sample lands
        there) counts that first value as an increase from the implicit
        0 every instrument starts at — a counter first incremented late
        in a run (``outcome=expired``) would otherwise never show its
        initial burst.
        """
        pts = self.window(key, window_s, at_s)
        if not pts:
            return 0.0
        with self._lock:
            birth = self._births.get(key)
        total = pts[0][1] if birth is not None and pts[0][0] <= birth \
            else 0.0
        for (_, v1), (_, v2) in zip(pts, pts[1:]):
            total += v2 - v1 if v2 >= v1 else v2
        return total

    def rate(
        self, key: str, window_s: float, at_s: float | None = None
    ) -> float:
        """Per-second counter rate over the window (0.0 when < 2 points)."""
        pts = self.window(key, window_s, at_s)
        if len(pts) < 2:
            return 0.0
        span = pts[-1][0] - pts[0][0]
        if span <= 0:
            return 0.0
        return self.increase(key, window_s, at_s) / span

    def avg_over(
        self, key: str, window_s: float, at_s: float | None = None
    ) -> float:
        """Mean of the stored values over the window (0.0 when empty)."""
        pts = self.window(key, window_s, at_s)
        if not pts:
            return 0.0
        return sum(v for _, v in pts) / len(pts)

    def max_over(
        self, key: str, window_s: float, at_s: float | None = None
    ) -> float:
        pts = self.window(key, window_s, at_s)
        return max((v for _, v in pts), default=0.0)

    def quantile_over(
        self,
        key: str,
        p: float,
        window_s: float,
        at_s: float | None = None,
    ) -> float:
        """The ``p``-th percentile (0..100) of windowed values, linearly
        interpolated like :meth:`Histogram.percentile` (0.0 when empty)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(v for _, v in self.window(key, window_s, at_s))
        if not ordered:
            return 0.0
        rank = (len(ordered) - 1) * p / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())


#: The process-global store :func:`repro.obs.probes.record_timeseries_tick`
#: samples into; :func:`repro.obs.reset` clears it.
TIMESERIES = TimeSeriesStore()


def get_timeseries() -> TimeSeriesStore:
    return TIMESERIES
