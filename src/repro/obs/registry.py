"""Labeled metrics: counters, gauges and timing histograms.

A :class:`MetricsRegistry` is a flat, process-local store of named metric
instruments, each keyed by ``(name, labels)`` — the usual Prometheus-style
data model, minus any wire format (this repo is zero-dependency).  Three
instrument kinds exist:

* :class:`Counter` — monotone accumulator (op counts, NTT rows, DSE
  points pruned).  Counters are *always* live: incrementing one is a
  couple of integer adds, so they are not gated behind the
  :mod:`repro.obs.config` switch.  The legacy
  :data:`repro.fhe.ntt.TRANSFORM_STATS` is a compat shim over four of
  them.
* :class:`Gauge` — last-written value (ciphertext level/scale after an
  op, per-layer noise budget in bits).
* :class:`Histogram` — full-sample distribution with exact percentiles
  (p50/p95/p99) over the recorded values; used for per-op wall times.

Handles returned by :meth:`MetricsRegistry.counter` (etc.) stay valid
across :meth:`MetricsRegistry.reset` — reset zeroes instruments in place
rather than dropping them, so modules may cache handles at import time.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing accumulator."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can go up and down; remembers the last write."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Exact-sample distribution with interpolated percentiles.

    Keeps every observation (these are per-HE-op timings — thousands per
    inference, not millions), so percentiles are exact: the same linear
    interpolation as ``numpy.percentile``'s default.
    """

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def reset(self) -> None:
        self.values.clear()

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linearly interpolated."""
        if not self.values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.values)
        rank = (len(ordered) - 1) * p / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict[str, float]:
        if not self.values:
            return {"count": 0, "total": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of metric instruments, safe for concurrent use."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, LabelKey], Any] = {}
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, labels: dict[str, Any]):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = _KINDS[kind](name, key[2])
                    self._metrics[key] = metric
        return metric

    # ``name`` is positional-only so a label may itself be called "name"
    # (e.g. ``span_seconds{category=..., name=...}``).
    def counter(self, name: str, /, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, /, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, /, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def collect(self, kind: str | None = None, name: str | None = None) -> Iterator:
        """Iterate instruments, optionally filtered by kind and/or name."""
        for (k, n, _), metric in sorted(
            self._metrics.items(), key=lambda item: item[0][:2] + (str(item[0][2]),)
        ):
            if kind is not None and k != kind:
                continue
            if name is not None and n != name:
                continue
            yield metric

    def reset(self) -> None:
        """Zero every instrument *in place* (cached handles stay valid)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All current values, JSON-ready, keyed ``name{label=value,...}``."""
        out: dict[str, dict[str, Any]] = {}
        for (kind, name, labels), metric in sorted(
            self._metrics.items(), key=lambda item: item[0][:2] + (str(item[0][2]),)
        ):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{name}{{{label_str}}}" if label_str else name
            if kind == "histogram":
                out[key] = {"kind": kind, **metric.summary()}
            else:
                out[key] = {"kind": kind, "value": metric.value}
        return out


#: The process-global registry every probe records into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
