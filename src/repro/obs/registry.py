"""Labeled metrics: counters, gauges and timing histograms.

A :class:`MetricsRegistry` is a flat, process-local store of named metric
instruments, each keyed by ``(name, labels)`` — the usual Prometheus-style
data model, minus any wire format (this repo is zero-dependency; the
Prometheus/OpenMetrics *text* rendering lives in :mod:`repro.obs.export`).
Three instrument kinds exist:

* :class:`Counter` — monotone accumulator (op counts, NTT rows, DSE
  points pruned).  Counters are *always* live: incrementing one is a
  couple of integer adds, so they are not gated behind the
  :mod:`repro.obs.config` switch.  The legacy
  :data:`repro.fhe.ntt.TRANSFORM_STATS` is a compat shim over four of
  them.
* :class:`Gauge` — last-written value (ciphertext level/scale after an
  op, per-layer noise budget in bits).
* :class:`Histogram` — sample distribution with exact percentiles
  (p50/p95/p99) while under its reservoir cap; beyond the cap it keeps a
  uniform random sample (Vitter's Algorithm R), so memory is bounded in
  a long-running server.

Every mutating instrument method takes the instrument's own lock:
``value += amount`` is a read-modify-write that interleaves across
bytecodes, so unlocked increments lose counts under the
:class:`~repro.serve.service.InferenceService` worker pool (the hammer
test in ``tests/obs/test_registry.py`` demonstrates exactness).  Reads
of ``value`` stay unlocked — a stale read is fine, a lost write is not.

Handles returned by :meth:`MetricsRegistry.counter` (etc.) stay valid
across :meth:`MetricsRegistry.reset` — reset zeroes instruments in place
rather than dropping them, so modules may cache handles at import time.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Any, Iterator

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing accumulator."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A value that can go up and down; remembers the last write."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += float(amount)

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


#: Default histogram reservoir: exact percentiles up to this many samples.
DEFAULT_RESERVOIR = 65_536


class Histogram:
    """Bounded-memory distribution with interpolated percentiles.

    Up to ``reservoir`` observations every sample is kept and percentiles
    are exact (the same linear interpolation as ``numpy.percentile``'s
    default).  Beyond the cap the stored samples become a uniform random
    reservoir (Algorithm R) of the full stream: ``count`` and ``total``
    stay exact, while ``min``/``max``/percentiles are estimates over the
    reservoir — unbiased, with error shrinking as the cap grows.  The
    replacement RNG is seeded from the instrument identity so runs are
    reproducible.
    """

    __slots__ = ("name", "labels", "values", "reservoir", "_count", "_total",
                 "_rng", "_seed", "_lock")

    def __init__(self, name: str, labels: LabelKey,
                 reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self.name = name
        self.labels = labels
        self.reservoir = reservoir
        self.values: list[float] = []
        self._count = 0
        self._total = 0.0
        self._seed = zlib.crc32(f"{name}|{labels}".encode())
        self._rng = random.Random(self._seed)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if len(self.values) < self.reservoir:
                self.values.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir:
                    self.values[slot] = value

    def reset(self) -> None:
        with self._lock:
            self.values.clear()
            self._count = 0
            self._total = 0.0
            self._rng = random.Random(self._seed)

    @property
    def count(self) -> int:
        """Exact number of observations (including sampled-out ones)."""
        return self._count

    @property
    def total(self) -> float:
        """Exact running sum of all observations."""
        return self._total

    @property
    def saturated(self) -> bool:
        """True once the reservoir is sampling (percentiles approximate)."""
        return self._count > self.reservoir

    def _sample(self) -> list[float]:
        with self._lock:
            return list(self.values)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linearly interpolated.

        Exact below the reservoir cap; a reservoir estimate above it.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._sample())
        if not ordered:
            return 0.0
        rank = (len(ordered) - 1) * p / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict[str, float]:
        sample = self._sample()
        if not sample:
            return {"count": 0, "total": 0.0}
        ordered = sorted(sample)
        out = {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count,
            "min": ordered[0],
            "max": ordered[-1],
            "p50": _interp(ordered, 50),
            "p95": _interp(ordered, 95),
            "p99": _interp(ordered, 99),
        }
        if self.saturated:
            out["sampled"] = True
        return out


def _interp(ordered: list[float], p: float) -> float:
    rank = (len(ordered) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of metric instruments, safe for concurrent use."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, LabelKey], Any] = {}
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str, labels: dict[str, Any]):
        key = (kind, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = _KINDS[kind](name, key[2])
                    self._metrics[key] = metric
        return metric

    # ``name`` is positional-only so a label may itself be called "name"
    # (e.g. ``span_seconds{category=..., name=...}``).
    def counter(self, name: str, /, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, /, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, /, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def collect(self, kind: str | None = None, name: str | None = None) -> Iterator:
        """Iterate instruments, optionally filtered by kind and/or name."""
        for (k, n, _), metric in sorted(
            self._metrics.items(), key=lambda item: item[0][:2] + (str(item[0][2]),)
        ):
            if kind is not None and k != kind:
                continue
            if name is not None and n != name:
                continue
            yield metric

    def items(self) -> Iterator[tuple[tuple[str, str, LabelKey], Any]]:
        """``((kind, name, labels), instrument)`` pairs in stable order."""
        yield from sorted(
            self._metrics.items(), key=lambda item: item[0][:2] + (str(item[0][2]),)
        )

    def reset(self) -> None:
        """Zero every instrument *in place* (cached handles stay valid)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All current values, JSON-ready, keyed ``name{label=value,...}``."""
        out: dict[str, dict[str, Any]] = {}
        for (kind, name, labels), metric in self.items():
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{name}{{{label_str}}}" if label_str else name
            if kind == "histogram":
                out[key] = {"kind": kind, **metric.summary()}
            else:
                out[key] = {"kind": kind, "value": metric.value}
        return out


#: The process-global registry every probe records into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
