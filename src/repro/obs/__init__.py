"""Unified observability: metrics, tracing, probes, flight data, export.

Pillars (all zero-dependency, all off by default):

* :mod:`repro.obs.registry` — labeled counters / gauges / histograms
  (thread-safe, reservoir-bounded) with exact p50/p95/p99 below the cap;
* :mod:`repro.obs.tracing` — nested spans with Chrome-trace / Perfetto
  JSON export, virtual-time event emission for the simulated schedulers,
  and a plain-text per-layer summary (paper Fig. 7 in text);
* :mod:`repro.obs.tracectx` — request-scoped trace IDs propagated from
  admission through batching, workers and pipeline stages;
* :mod:`repro.obs.flight` — bounded ring of structured events with JSONL
  dump and a dump-on-error hook (the post-mortem for a failed request);
* :mod:`repro.obs.export` — OpenMetrics text rendering, grammar
  validation, and a periodic atomic snapshotter;
* :mod:`repro.obs.lineage` — per-ciphertext provenance: lineage IDs,
  a request-scoped op DAG with per-op analytic noise deltas, layer
  noise waterfalls and headroom threshold watches;
* :mod:`repro.obs.probes` — the hooks the evaluator, HE-CNN layers,
  noise estimator, simulator, DSE, serving and cluster layers call.

Enable with :func:`enable` / :func:`observed`; with the switch off every
instrumented hot path costs one flag check (< 2 % on the FHE microbench,
asserted in CI).  See ``docs/observability.md``.
"""

from .alerts import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    load_rules,
    rule_from_dict,
)
from .config import disable, enable, enabled, observed, set_enabled
from .export import Snapshotter, render_openmetrics, validate_openmetrics
from .flight import FLIGHT, FlightRecorder, dump_on_error, get_flight_recorder
from .timeseries import TIMESERIES, TimeSeriesStore, get_timeseries
from .lineage import (
    HeadroomWatch,
    LineageNode,
    LineageTracker,
    NoiseAuditError,
    current_tracker,
    lineage_context,
)
from .probes import (
    DseProgress,
    record_batch_dispatch,
    record_flight,
    record_he_op,
    record_layer,
    record_noise_budget,
    record_noise_gap,
    record_noise_headroom,
    record_queue_depth,
    record_request_latency,
    record_request_outcome,
    record_sim_layer,
    record_tenant_cost,
    record_throughput,
    record_timeseries_flush,
    record_timeseries_tick,
)
from .registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .tracectx import current_trace_id, new_trace_id, trace_context
from .tracing import (
    TRACER,
    Span,
    Tracer,
    emit_virtual,
    get_tracer,
    trace_span,
    traced,
)


def reset() -> None:
    """Zero the registry, drop trace events, the flight ring and the
    time-series history (the test-isolation hook).

    Metric handles cached by other modules stay valid (instruments are
    zeroed in place, not dropped).
    """
    REGISTRY.reset()
    TRACER.clear()
    FLIGHT.clear()
    TIMESERIES.clear()


__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "Counter",
    "DseProgress",
    "FLIGHT",
    "FlightRecorder",
    "Gauge",
    "HeadroomWatch",
    "Histogram",
    "LineageNode",
    "LineageTracker",
    "MetricsRegistry",
    "NoiseAuditError",
    "REGISTRY",
    "Snapshotter",
    "Span",
    "TIMESERIES",
    "TRACER",
    "Tracer",
    "TimeSeriesStore",
    "current_trace_id",
    "current_tracker",
    "disable",
    "dump_on_error",
    "emit_virtual",
    "enable",
    "enabled",
    "get_flight_recorder",
    "get_registry",
    "get_timeseries",
    "get_tracer",
    "lineage_context",
    "load_rules",
    "new_trace_id",
    "observed",
    "record_batch_dispatch",
    "record_flight",
    "record_he_op",
    "record_layer",
    "record_noise_budget",
    "record_noise_gap",
    "record_noise_headroom",
    "record_queue_depth",
    "record_request_latency",
    "record_request_outcome",
    "record_sim_layer",
    "record_tenant_cost",
    "record_throughput",
    "record_timeseries_flush",
    "record_timeseries_tick",
    "render_openmetrics",
    "reset",
    "rule_from_dict",
    "set_enabled",
    "trace_context",
    "trace_span",
    "traced",
    "validate_openmetrics",
]
