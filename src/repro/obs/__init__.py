"""Unified observability: metrics registry, span tracing, domain probes.

Three pillars (all zero-dependency, all off by default):

* :mod:`repro.obs.registry` — labeled counters / gauges / histograms with
  exact p50/p95/p99, the data behind the per-op latency breakdowns;
* :mod:`repro.obs.tracing` — nested spans with Chrome-trace / Perfetto
  JSON export and a plain-text per-layer summary (paper Fig. 7 in text);
* :mod:`repro.obs.probes` — the hooks the evaluator, HE-CNN layers, noise
  estimator, simulator and DSE call.

Enable with :func:`enable` / :func:`observed`; with the switch off every
instrumented hot path costs one flag check (< 2 % on the FHE microbench,
asserted in CI).  See ``docs/observability.md``.
"""

from .config import disable, enable, enabled, observed, set_enabled
from .probes import (
    DseProgress,
    record_batch_dispatch,
    record_he_op,
    record_layer,
    record_noise_budget,
    record_queue_depth,
    record_request_latency,
    record_request_outcome,
    record_sim_layer,
    record_throughput,
)
from .registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .tracing import TRACER, Span, Tracer, get_tracer, trace_span, traced


def reset() -> None:
    """Zero the registry and drop all trace events (the test-isolation hook).

    Metric handles cached by other modules stay valid (instruments are
    zeroed in place, not dropped).
    """
    REGISTRY.reset()
    TRACER.clear()


__all__ = [
    "Counter",
    "DseProgress",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "TRACER",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "get_tracer",
    "observed",
    "record_batch_dispatch",
    "record_he_op",
    "record_layer",
    "record_noise_budget",
    "record_queue_depth",
    "record_request_latency",
    "record_request_outcome",
    "record_sim_layer",
    "record_throughput",
    "reset",
    "set_enabled",
    "trace_span",
    "traced",
]
