"""HE-CNN layer library: LoLa-style packing, packed layers, benchmark models.

Everything needed to express a CNN as a sequence of homomorphic operations
on packed ciphertexts: the plaintext reference, slot layouts and packing
plans, packed layers with functional execution *and* analytic operation
traces, and the paper's two benchmark networks.
"""

from .batched import (
    BatchedLayerSpec,
    batched_layer_trace,
    batched_network_trace,
    cryptonets_mnist_batched,
    max_batch_lanes,
)
from .builder import NetworkBuilder
from .data import (
    glorot_weights,
    small_bias,
    synthetic_cifar10_image,
    synthetic_image_batch,
    synthetic_mnist_image,
)
from .layers import (
    PackedAveragePool,
    PackedConv,
    PackedDense,
    PackedLayer,
    PackedSquare,
)
from .models import (
    conv_as_dense_matrix,
    fxhenn_cifar10_model,
    fxhenn_mnist_model,
    tiny_mnist_model,
)
from .network import HeCnn
from .packing import ConvPacking, DensePacking, RotationPhase, SlotLayout, next_pow2
from .reference import (
    ConvSpec,
    DenseSpec,
    PlainAveragePool,
    PlainConv2d,
    PlainDense,
    PlainNetwork,
    PlainSquare,
    PoolSpec,
)
from .trace import LayerTrace, NetworkTrace, he_op_basic_ops, ntt_pass_basic_ops

__all__ = [
    "BatchedLayerSpec",
    "ConvPacking",
    "ConvSpec",
    "DensePacking",
    "DenseSpec",
    "HeCnn",
    "NetworkBuilder",
    "PackedAveragePool",
    "LayerTrace",
    "NetworkTrace",
    "PackedConv",
    "PackedDense",
    "PackedLayer",
    "PackedSquare",
    "PlainAveragePool",
    "PlainConv2d",
    "PlainDense",
    "PlainNetwork",
    "PlainSquare",
    "PoolSpec",
    "RotationPhase",
    "SlotLayout",
    "batched_layer_trace",
    "batched_network_trace",
    "conv_as_dense_matrix",
    "cryptonets_mnist_batched",
    "max_batch_lanes",
    "fxhenn_cifar10_model",
    "fxhenn_mnist_model",
    "glorot_weights",
    "he_op_basic_ops",
    "next_pow2",
    "ntt_pass_basic_ops",
    "small_bias",
    "synthetic_cifar10_image",
    "synthetic_image_batch",
    "synthetic_mnist_image",
    "tiny_mnist_model",
]
