"""Plaintext (cleartext) CNN reference implementation.

The encrypted inference pipeline must decrypt to exactly what this forward
pass computes (up to CKKS precision).  Layers mirror the LoLa/CryptoNets
topology used by the paper: convolution, square activation, dense.

Kept deliberately simple and numpy-only — this is the functional oracle, not
a training framework.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConvSpec:
    """Geometry of a 2-D convolution layer (NCHW, single image)."""

    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    in_size: int  # input spatial height == width

    @property
    def out_size(self) -> int:
        return (self.in_size + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def out_positions(self) -> int:
        return self.out_size * self.out_size

    @property
    def kernel_offsets(self) -> int:
        """Number of (channel, ky, kx) kernel positions — one packed
        ciphertext per offset in the LoLa convolution representation."""
        return self.in_channels * self.kernel_size * self.kernel_size

    @property
    def output_count(self) -> int:
        return self.out_channels * self.out_positions

    @property
    def macs(self) -> int:
        """Plain-CNN multiply-accumulate count (paper Table IV, "MACs")."""
        return self.out_positions * self.kernel_offsets * self.out_channels


@dataclass(frozen=True)
class DenseSpec:
    """Geometry of a fully connected layer."""

    in_features: int
    out_features: int

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features


class PlainConv2d:
    """Valid/same 2-D convolution over one image, channel-major output.

    The output is flattened as ``out[c * P + p]`` (map-major, position-minor)
    to match the packed slot layout of the encrypted pipeline.
    """

    def __init__(self, spec: ConvSpec, weights: np.ndarray, bias: np.ndarray) -> None:
        expected_w = (spec.out_channels, spec.in_channels, spec.kernel_size, spec.kernel_size)
        if weights.shape != expected_w:
            raise ValueError(f"weights must have shape {expected_w}, got {weights.shape}")
        if bias.shape != (spec.out_channels,):
            raise ValueError(f"bias must have shape ({spec.out_channels},)")
        self.spec = spec
        self.weights = np.asarray(weights, dtype=np.float64)
        self.bias = np.asarray(bias, dtype=np.float64)

    def forward(self, image: np.ndarray) -> np.ndarray:
        s = self.spec
        if image.shape != (s.in_channels, s.in_size, s.in_size):
            raise ValueError(
                f"image must have shape {(s.in_channels, s.in_size, s.in_size)}"
            )
        padded = np.pad(
            image, ((0, 0), (s.padding, s.padding), (s.padding, s.padding))
        )
        out = np.empty((s.out_channels, s.out_size, s.out_size))
        for m in range(s.out_channels):
            for oy in range(s.out_size):
                for ox in range(s.out_size):
                    window = padded[
                        :,
                        oy * s.stride : oy * s.stride + s.kernel_size,
                        ox * s.stride : ox * s.stride + s.kernel_size,
                    ]
                    out[m, oy, ox] = np.sum(window * self.weights[m]) + self.bias[m]
        return out.reshape(-1)  # map-major flattening


class PlainSquare:
    """Elementwise square — the polynomial activation of CryptoNets/LoLa."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x * x


@dataclass(frozen=True)
class PoolSpec:
    """Geometry of a non-overlapping average pooling layer.

    Operates on a map-major flattened tensor of ``channels`` maps of
    ``in_size x in_size`` positions; window and stride are both ``k``.
    """

    channels: int
    in_size: int
    k: int

    def __post_init__(self) -> None:
        if self.in_size % self.k:
            raise ValueError("in_size must be divisible by the pool size k")

    @property
    def out_size(self) -> int:
        return self.in_size // self.k

    @property
    def in_positions(self) -> int:
        return self.in_size * self.in_size

    @property
    def out_positions(self) -> int:
        return self.out_size * self.out_size

    @property
    def output_count(self) -> int:
        return self.channels * self.out_positions


class PlainAveragePool:
    """Non-overlapping k x k average pooling on map-major flattened input."""

    def __init__(self, spec: PoolSpec) -> None:
        self.spec = spec

    def forward(self, x: np.ndarray) -> np.ndarray:
        s = self.spec
        if x.shape != (s.channels * s.in_positions,):
            raise ValueError(
                f"input must have {s.channels * s.in_positions} values"
            )
        maps = x.reshape(s.channels, s.in_size, s.in_size)
        pooled = maps.reshape(
            s.channels, s.out_size, s.k, s.out_size, s.k
        ).mean(axis=(2, 4))
        return pooled.reshape(-1)


class PlainDense:
    """Fully connected layer ``y = W x + b``."""

    def __init__(self, spec: DenseSpec, weights: np.ndarray, bias: np.ndarray) -> None:
        if weights.shape != (spec.out_features, spec.in_features):
            raise ValueError(
                f"weights must have shape {(spec.out_features, spec.in_features)}"
            )
        if bias.shape != (spec.out_features,):
            raise ValueError(f"bias must have shape ({spec.out_features},)")
        self.spec = spec
        self.weights = np.asarray(weights, dtype=np.float64)
        self.bias = np.asarray(bias, dtype=np.float64)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape != (self.spec.in_features,):
            raise ValueError(f"input must have {self.spec.in_features} features")
        return self.weights @ x + self.bias


class PlainNetwork:
    """Sequential container over the plain layers."""

    def __init__(self, layers: list) -> None:
        self.layers = list(layers)

    def forward(self, image: np.ndarray) -> np.ndarray:
        x = image
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def predict(self, image: np.ndarray) -> int:
        return int(np.argmax(self.forward(image)))
