"""Synthetic datasets and deterministic weight initialization.

Documented substitution (DESIGN.md): the paper evaluates on MNIST and
CIFAR-10 with LoLa's trained models, neither of which is available offline.
Accuracy is a training property orthogonal to the accelerator framework; the
latency/resource evaluation depends only on layer *shapes* and HE
parameters.  We therefore generate synthetic images with the correct shapes
and value ranges, and seeded Glorot-style weights, so that:

* encrypted inference can be validated against the plaintext reference
  (bit-for-bit the same computation), and
* every operation trace, HOP count and model-size figure is produced by the
  same layer geometry the paper uses.
"""

from __future__ import annotations

import numpy as np


def synthetic_mnist_image(seed: int = 0) -> np.ndarray:
    """A 1x28x28 image with MNIST-like statistics (values in [0, 1]).

    Draws a sparse blob pattern rather than uniform noise so activations
    have realistic dynamic range for CKKS precision checks.
    """
    rng = np.random.default_rng(seed)
    img = np.zeros((28, 28))
    for _ in range(6):
        cy, cx = rng.integers(4, 24, 2)
        yy, xx = np.mgrid[0:28, 0:28]
        img += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / rng.uniform(4, 12))
    img = np.clip(img / img.max(), 0.0, 1.0)
    return img[None, :, :]


def synthetic_cifar10_image(seed: int = 0) -> np.ndarray:
    """A 3x32x32 image with CIFAR-like statistics (values in [0, 1])."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 1, (3, 8, 8))
    img = np.kron(base, np.ones((4, 4)))  # blocky texture
    img += rng.normal(0, 0.08, img.shape)
    return np.clip(img, 0.0, 1.0)


def synthetic_image_batch(kind: str, count: int, seed: int = 0) -> list[np.ndarray]:
    """A list of synthetic images of the requested dataset shape."""
    maker = {"mnist": synthetic_mnist_image, "cifar10": synthetic_cifar10_image}
    try:
        fn = maker[kind]
    except KeyError:
        raise ValueError(f"unknown dataset kind {kind!r}") from None
    return [fn(seed + i) for i in range(count)]


def glorot_weights(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform weights; keeps activations in CKKS-friendly range."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, shape)


def small_bias(count: int, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(-0.05, 0.05, count)
