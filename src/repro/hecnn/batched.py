"""CryptoNets-style batched packing: the throughput-oriented alternative.

The paper's Sec. II-B contrasts two packing philosophies:

* **LoLa packing** (what `repro.hecnn.packing` implements): many pixels of
  *one* image per ciphertext — few HE operations, lowest latency per
  frame;
* **CryptoNets packing** [15]: the *same* pixel of up to ``N/2`` images
  per ciphertext — every scalar of the network becomes its own ciphertext,
  so the HE operation count equals the plain network's scalar-operation
  count, but all slot lanes carry different images, amortizing the cost.

This module derives the batched-packing operation trace for any
conv/square/dense topology.  Against the CryptoNets-MNIST network it
reproduces Table VII's published counts (215K HOPs, 945 KeySwitches) from
pure geometry, and the extension bench compares latency vs amortized
throughput of the two schemes on the same accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..optypes import HeOp
from .reference import ConvSpec, DenseSpec
from .trace import LayerTrace, NetworkTrace


@dataclass(frozen=True)
class BatchedLayerSpec:
    """One layer of a batched-packing network description."""

    name: str
    kind: str  # "conv", "square", "dense"
    macs: int = 0
    outputs: int = 0

    @classmethod
    def conv(cls, name: str, spec: ConvSpec) -> "BatchedLayerSpec":
        return cls(name=name, kind="conv", macs=spec.macs,
                   outputs=spec.output_count)

    @classmethod
    def dense(cls, name: str, spec: DenseSpec) -> "BatchedLayerSpec":
        return cls(name=name, kind="dense", macs=spec.macs,
                   outputs=spec.out_features)

    @classmethod
    def square(cls, name: str, width: int) -> "BatchedLayerSpec":
        return cls(name=name, kind="square", macs=width, outputs=width)


def batched_layer_trace(spec: BatchedLayerSpec, level: int) -> LayerTrace:
    """Operation trace of one layer under per-scalar ciphertexts.

    * conv/dense: one ``PCmult`` per MAC, a ``CCadd`` accumulation per MAC
      minus one per output, one ``Rescale`` and one bias ``PCadd`` per
      output ciphertext — NKS layers (no rotations are ever needed: data
      never moves between slots);
    * square: ``CCmult + Relinearize + Rescale`` per value ciphertext — a
      KS layer with one KeySwitch per activation (CryptoNets-MNIST: 845 +
      100 = the published 945).
    """
    if spec.kind in ("conv", "dense"):
        counts = {
            HeOp.PC_MULT: spec.macs,
            HeOp.CC_ADD: spec.macs - spec.outputs,
            HeOp.RESCALE: spec.outputs,
            HeOp.PC_ADD: spec.outputs,
        }
        return LayerTrace(
            name=spec.name,
            kind="NKS",
            op_counts=counts,
            nks_units=spec.macs,
            ks_units=0,
            level=level,
            num_input_cts=spec.macs // max(1, spec.outputs),
            num_output_cts=spec.outputs,
            macs=spec.macs,
            plaintext_count=spec.macs + spec.outputs,
        )
    if spec.kind == "square":
        counts = {
            HeOp.CC_MULT: spec.outputs,
            HeOp.KEY_SWITCH: spec.outputs,
            HeOp.RESCALE: spec.outputs,
        }
        return LayerTrace(
            name=spec.name,
            kind="KS",
            op_counts=counts,
            nks_units=spec.outputs,
            ks_units=spec.outputs,
            level=level,
            num_input_cts=spec.outputs,
            num_output_cts=spec.outputs,
            macs=spec.outputs,
            plaintext_count=0,
        )
    raise ValueError(f"unknown batched layer kind {spec.kind!r}")


def max_batch_lanes(poly_degree: int) -> int:
    """Images one batched inference can carry: ``N/2`` slot lanes."""
    return poly_degree // 2


def batched_network_trace(
    name: str,
    layers: list[BatchedLayerSpec],
    poly_degree: int,
    base_level: int,
    prime_bits: int = 30,
    lanes: int | None = None,
) -> NetworkTrace:
    """Full batched-packing trace (one rescale per layer, like the paper).

    ``lanes`` records how many of the ``N/2`` slot lanes carry live
    images (default: all of them).  Under-filled batches execute the
    *identical* operation sequence — lane occupancy only changes the
    amortized per-image cost, which is why the serving layer wants it on
    the trace.
    """
    if lanes is None:
        lanes = max_batch_lanes(poly_degree)
    if not 1 <= lanes <= max_batch_lanes(poly_degree):
        raise ValueError(
            f"lanes must be in [1, {max_batch_lanes(poly_degree)}] "
            f"for N={poly_degree}, got {lanes}"
        )
    traces = []
    level = base_level
    for spec in layers:
        traces.append(batched_layer_trace(spec, level))
        level -= 1
    return NetworkTrace(
        name=name,
        layers=tuple(traces),
        poly_degree=poly_degree,
        base_level=base_level,
        prime_bits=prime_bits,
        batch_lanes=lanes,
    )


def cryptonets_mnist_batched(
    poly_degree: int = 8192, lanes: int | None = None
) -> NetworkTrace:
    """The CryptoNets/LoLa MNIST topology under batched packing.

    Reproduces the CryptoNets row of paper Table VII: ~215K HOPs with 945
    KeySwitch operations, serving ``poly_degree / 2`` images at once
    (``lanes`` restricts that to a partial batch).
    """
    conv = ConvSpec(
        in_channels=1, out_channels=5, kernel_size=5, stride=2, padding=1,
        in_size=28,
    )
    fc1 = DenseSpec(in_features=conv.output_count, out_features=100)
    fc2 = DenseSpec(in_features=100, out_features=10)
    layers = [
        BatchedLayerSpec.conv("Cnv1", conv),
        BatchedLayerSpec.square("Act1", conv.output_count),
        BatchedLayerSpec.dense("Fc1", fc1),
        BatchedLayerSpec.square("Act2", fc1.out_features),
        BatchedLayerSpec.dense("Fc2", fc2),
    ]
    return batched_network_trace(
        "CryptoNets-MNIST-batched", layers, poly_degree, base_level=7,
        lanes=lanes,
    )
