"""LoLa-style ciphertext packing for HE-CNN layers.

The paper adopts LoLa's [5] input/weight packing (Sec. VII-A), in which the
CNN's data layout inside ciphertext slots is reorganized so that:

* a convolution becomes a single loop of ``PCmult -> Rescale -> CCadd`` over
  *kernel offsets* (paper Listing 1) — an **NKS** layer;
* a fully connected layer becomes ``PCmult`` with stacked matrix rows
  followed by a rotate-and-sum reduction (``Rotate`` + ``CCadd``
  iterations) — a **KS** layer (paper Sec. V-A, Fig. 3).

This module defines the slot-layout bookkeeping and the client/server-side
packing math; the layers in :mod:`repro.hecnn.layers` consume it both for
functional encrypted execution and for analytic operation-trace extraction.

Packing scheme details
----------------------

**Convolution.**  For a conv with ``K`` kernel offsets (channel x ky x kx),
``P`` output positions and ``M`` output maps, the client sends ``K``
ciphertexts; ciphertext ``k`` holds, at slot ``m_local * P + p``, the input
pixel that kernel offset ``k`` touches when computing output position ``p``
(replicated across the per-map blocks ``m_local``).  The server multiplies
each by a weight plaintext carrying ``w[m][k]`` across map block ``m`` and
accumulates.  When ``M * P`` exceeds the slot count, output maps are split
into groups, one output ciphertext per group — the input ciphertexts are
shared by all groups.

**Dense.**  Inputs of width ``W`` occupying slots ``[0, W)`` are replicated
into ``C = slots // B`` blocks of width ``B = next_pow2(W)``.  Rows are
processed ``C`` at a time ("chunks"); chunk ``j``'s weight plaintext uses a
wrap-around diagonal placement so that after a sliding rotate-and-sum of
``log2(B)`` rotations, the dot product of row ``j*C + b`` lands exactly at
slot ``b*B + j`` — chunks then merge with plain ``CCadd`` and **no** extra
rotations.  For scattered inputs (the output of a previous dense layer) the
reduction uses a two-phase schedule (intra-block window then inter-block
strides), and per-row results merge through a shift-by-one accumulator that
needs only a single rotation key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .reference import ConvSpec, DenseSpec


def next_pow2(x: int) -> int:
    """Smallest power of two >= x (x >= 1)."""
    if x < 1:
        raise ValueError("x must be >= 1")
    return 1 << (x - 1).bit_length()


@dataclass(frozen=True)
class SlotLayout:
    """Where each logical value of a layer boundary lives.

    Attributes
    ----------
    slot_count:
        Slots per ciphertext.
    num_cts:
        Number of ciphertexts the values span.
    ct_index / slot_index:
        Parallel arrays mapping value ``v`` to ``(ct, slot)``.
    clean:
        True if every slot *not* listed is exactly zero — required before a
        dense layer may replicate the input into multiple blocks.
    block_stride / offset_span:
        Structural metadata set by dense outputs: values sit at slots
        ``b * block_stride + j`` with ``j < offset_span``.  Enables the
        reduced two-phase rotation schedule downstream.
    """

    slot_count: int
    num_cts: int
    ct_index: np.ndarray
    slot_index: np.ndarray
    clean: bool
    block_stride: int | None = None
    offset_span: int | None = None

    def __post_init__(self) -> None:
        if self.ct_index.shape != self.slot_index.shape:
            raise ValueError("ct_index and slot_index must align")
        if len(self.ct_index) and int(self.ct_index.max()) >= self.num_cts:
            raise ValueError("ct_index out of range")
        if len(self.slot_index) and int(self.slot_index.max()) >= self.slot_count:
            raise ValueError("slot_index out of range")

    @property
    def value_count(self) -> int:
        return len(self.ct_index)

    def positions_for_ct(self, ct: int) -> np.ndarray:
        """Value indices living in ciphertext ``ct``."""
        return np.nonzero(self.ct_index == ct)[0]

    @classmethod
    def contiguous(cls, slot_count: int, width: int, clean: bool = True) -> "SlotLayout":
        """Values ``0..width-1`` at slots ``0..width-1`` of one ciphertext."""
        if width > slot_count:
            raise ValueError("width exceeds slot count")
        return cls(
            slot_count=slot_count,
            num_cts=1,
            ct_index=np.zeros(width, dtype=np.int64),
            slot_index=np.arange(width, dtype=np.int64),
            clean=clean,
        )

    def gather(self, flat_values: np.ndarray) -> list[np.ndarray]:
        """Scatter a flat value vector into per-ciphertext slot vectors.

        Test/diagnostic helper: produces the slot contents a noiseless
        execution would yield at this boundary.
        """
        if len(flat_values) != self.value_count:
            raise ValueError("value count mismatch")
        out = [np.zeros(self.slot_count) for _ in range(self.num_cts)]
        for v, (c, s) in enumerate(zip(self.ct_index, self.slot_index)):
            out[c][s] = flat_values[v]
        return out

    def extract(self, slot_vectors: list[np.ndarray]) -> np.ndarray:
        """Read the layout's values back out of per-ciphertext slot vectors."""
        return np.array(
            [slot_vectors[c][s] for c, s in zip(self.ct_index, self.slot_index)]
        )


# ---------------------------------------------------------------------------
# Convolution packing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConvPacking:
    """Server/client-agreed packing plan for one convolution layer."""

    spec: ConvSpec
    slot_count: int
    maps_per_group: int = field(init=False)
    num_groups: int = field(init=False)

    def __post_init__(self) -> None:
        p = self.spec.out_positions
        if p > self.slot_count:
            raise ValueError(
                f"{p} output positions do not fit in {self.slot_count} slots"
            )
        mpg = min(self.spec.out_channels, self.slot_count // p)
        object.__setattr__(self, "maps_per_group", mpg)
        object.__setattr__(
            self, "num_groups", -(-self.spec.out_channels // mpg)
        )

    # -- client side -------------------------------------------------------------

    def gather_offsets(self, image: np.ndarray) -> list[np.ndarray]:
        """Build the ``K`` per-offset slot vectors the client encrypts.

        Vector ``k`` holds, at slot ``m_local * P + p``, the padded input
        pixel at channel/dy/dx offset ``k`` of output window ``p``.
        """
        s = self.spec
        padded = np.pad(image, ((0, 0), (s.padding, s.padding), (s.padding, s.padding)))
        p_count = s.out_positions
        vectors: list[np.ndarray] = []
        oy, ox = np.divmod(np.arange(p_count), s.out_size)
        base_y = oy * s.stride
        base_x = ox * s.stride
        for c in range(s.in_channels):
            for ky in range(s.kernel_size):
                for kx in range(s.kernel_size):
                    window_vals = padded[c, base_y + ky, base_x + kx]
                    vec = np.zeros(self.slot_count)
                    for m_local in range(self.maps_per_group):
                        vec[m_local * p_count : m_local * p_count + p_count] = (
                            window_vals
                        )
                    vectors.append(vec)
        return vectors

    # -- server side -------------------------------------------------------------

    def weight_vector(self, group: int, offset: int, weights: np.ndarray) -> np.ndarray:
        """Weight plaintext slots for one (group, kernel offset) PCmult."""
        s = self.spec
        c, rem = divmod(offset, s.kernel_size * s.kernel_size)
        ky, kx = divmod(rem, s.kernel_size)
        vec = np.zeros(self.slot_count)
        p_count = s.out_positions
        for m_local in range(self.maps_per_group):
            m = group * self.maps_per_group + m_local
            if m >= s.out_channels:
                break
            vec[m_local * p_count : (m_local + 1) * p_count] = weights[m, c, ky, kx]
        return vec

    def bias_vector(self, group: int, bias: np.ndarray) -> np.ndarray:
        """Bias plaintext slots for one group's final PCadd."""
        s = self.spec
        vec = np.zeros(self.slot_count)
        p_count = s.out_positions
        for m_local in range(self.maps_per_group):
            m = group * self.maps_per_group + m_local
            if m >= s.out_channels:
                break
            vec[m_local * p_count : (m_local + 1) * p_count] = bias[m]
        return vec

    def output_layout(self) -> SlotLayout:
        """Layout of the conv output: value ``m * P + p`` at group ``m //
        mpg``, slot ``(m % mpg) * P + p``."""
        s = self.spec
        p_count = s.out_positions
        values = np.arange(s.output_count)
        m, p = np.divmod(values, p_count)
        ct = m // self.maps_per_group
        slot = (m % self.maps_per_group) * p_count + p
        return SlotLayout(
            slot_count=self.slot_count,
            num_cts=self.num_groups,
            ct_index=ct.astype(np.int64),
            slot_index=slot.astype(np.int64),
            clean=True,
        )


# ---------------------------------------------------------------------------
# Dense packing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RotationPhase:
    """One phase of a rotate-and-sum reduction: steps are applied in order,
    each followed by a (pipeline-fused) CCadd."""

    steps: tuple[int, ...]


@dataclass(frozen=True)
class DensePacking:
    """Packing plan for one fully connected (KS-type) layer.

    Two regimes, chosen from the input layout:

    * **replicated** (clean contiguous input): ``C`` copies, wrap-around
      diagonal weights, outputs at ``b * B + j``;
    * **scattered** (previous dense output): one chunk per row, two-phase
      reduction, outputs merged via a shift-by-one accumulator.
    """

    spec: DenseSpec
    input_layout: SlotLayout
    #: When False (the network's final layer), chunk results are returned as
    #: separate ciphertexts instead of being masked and merged — saving the
    #: mask level and the merge rotations, exactly like LoLa's output layer.
    merge_output: bool = True
    slot_count: int = field(init=False)
    replicated: bool = field(init=False)
    block_width: int = field(init=False)
    copies: int = field(init=False)
    num_chunks: int = field(init=False)

    def __post_init__(self) -> None:
        lay = self.input_layout
        if lay.value_count != self.spec.in_features:
            raise ValueError(
                f"layout carries {lay.value_count} values, layer expects "
                f"{self.spec.in_features}"
            )
        object.__setattr__(self, "slot_count", lay.slot_count)
        replicated = (
            lay.clean
            and lay.num_cts == 1
            and bool(np.all(lay.ct_index == 0))
            and bool(np.array_equal(lay.slot_index, np.arange(lay.value_count)))
        )
        object.__setattr__(self, "replicated", replicated)
        if replicated:
            b = next_pow2(self.spec.in_features)
            c = max(1, lay.slot_count // b)
            chunks = -(-self.spec.out_features // c)
            if chunks > b:
                # The diagonal shift j must stay below the block width.
                raise ValueError("too many rows for the replicated packing")
        else:
            b = lay.slot_count
            c = 1
            chunks = self.spec.out_features
        object.__setattr__(self, "block_width", b)
        object.__setattr__(self, "copies", c)
        object.__setattr__(self, "num_chunks", chunks)

    # -- replication -------------------------------------------------------------

    def replication_steps(self) -> list[int]:
        """Left-rotation steps that replicate block 0 into all ``C`` blocks.

        Each step doubles the number of copies (rotate right by
        ``B * 2^t`` == rotate left by ``S - B * 2^t``, then CCadd).
        """
        if not self.replicated or self.copies == 1:
            return []
        steps = []
        width = self.block_width
        while width * 2 <= self.block_width * self.copies:
            steps.append(self.slot_count - width)
            width *= 2
        return steps

    # -- weight plaintexts ----------------------------------------------------------

    def weight_vector(
        self, chunk: int, input_ct: int, weights: np.ndarray
    ) -> np.ndarray:
        """Weight plaintext slots for one (chunk, input ciphertext) PCmult.

        Replicated regime: wrap-around diagonal placement (see module
        docstring).  Scattered regime: row ``chunk``'s weights at the input
        layout's positions within ``input_ct``.
        """
        vec = np.zeros(self.slot_count)
        lay = self.input_layout
        if self.replicated:
            b_width, c, j = self.block_width, self.copies, chunk
            for b in range(c):
                for u in range(self.spec.in_features):
                    # Slots below the diagonal shift serve the previous
                    # block's row (the rotate-and-sum window wraps there).
                    owner_block = b if u >= j else (b - 1) % c
                    row = j * c + owner_block
                    if row < self.spec.out_features:
                        vec[b * b_width + u] = weights[row, u]
            return vec
        row = chunk
        mask = lay.ct_index == input_ct
        vec[lay.slot_index[mask]] = weights[row, np.nonzero(mask)[0]]
        return vec

    def bias_vector(self, bias: np.ndarray) -> np.ndarray:
        """Bias plaintext matching the merged output layout (single PCadd)."""
        if not self.merge_output:
            raise ValueError("unmerged packing: use chunk_bias_vector")
        vec = np.zeros(self.slot_count)
        out = self.output_layout()
        vec[out.slot_index] = bias
        return vec

    def chunk_bias_vector(self, chunk: int, bias: np.ndarray) -> np.ndarray:
        """Bias plaintext for one chunk's (unmerged) output ciphertext."""
        vec = np.zeros(self.slot_count)
        if self.replicated:
            for b in range(self.copies):
                row = chunk * self.copies + b
                if row < self.spec.out_features:
                    vec[b * self.block_width + chunk] = bias[row]
        else:
            vec[0] = bias[chunk]
        return vec

    # -- reductions ------------------------------------------------------------------

    def rotation_phases(self) -> list[RotationPhase]:
        """The rotate-and-sum schedule applied after each chunk's PCmult."""
        if self.replicated:
            steps = []
            step = self.block_width // 2
            while step >= 1:
                steps.append(step)
                step //= 2
            return [RotationPhase(tuple(steps))]
        lay = self.input_layout
        if lay.block_stride is not None and lay.offset_span is not None:
            # Two-phase: a window covering the offsets within a block, then
            # strides across the blocks.
            window = next_pow2(lay.offset_span)
            phase1 = []
            step = window // 2
            while step >= 1:
                phase1.append(step)
                step //= 2
            blocks = self.slot_count // lay.block_stride
            phase2 = [lay.block_stride * (1 << t) for t in range(max(0, blocks.bit_length() - 1))]
            return [RotationPhase(tuple(phase1)), RotationPhase(tuple(phase2))]
        # Fallback: full-width reduction.
        steps = []
        step = self.slot_count // 2
        while step >= 1:
            steps.append(step)
            step //= 2
        return [RotationPhase(tuple(steps))]

    @property
    def needs_mask(self) -> bool:
        """Whether chunk results must be masked before merging.

        The sliding rotate-and-sum fills *every* slot, so adding two chunk
        results would pollute each other's output slots.  With more than
        one chunk, each result is therefore multiplied by a 0/1 mask
        plaintext (one extra PCmult + Rescale per chunk, consuming one
        additional ciphertext level for the layer).  This is exactly the
        slack the paper's parameter choice provides: L = 7 supports the
        5 multiplications of the network plus the dense-layer re-packing.
        """
        return self.merge_output and self.num_chunks > 1

    def mask_vector(self, chunk: int) -> np.ndarray:
        """The 0/1 plaintext isolating one chunk's output slots."""
        vec = np.zeros(self.slot_count)
        if self.replicated:
            for b in range(self.copies):
                row = chunk * self.copies + b
                if row < self.spec.out_features:
                    vec[b * self.block_width + chunk] = 1.0
        else:
            vec[0] = 1.0  # scattered chunks reduce into slot 0
        return vec

    def merge_rotation_steps(self) -> list[int]:
        """Rotations needed to merge chunk results into one ciphertext.

        Replicated regime: none (the diagonal trick places outputs
        directly).  Scattered regime: ``chunks - 1`` shift-by-one rotations
        of the accumulator (all the same step — one rotation key).
        Unmerged output layers need none."""
        if self.replicated or not self.merge_output:
            return []
        return [self.slot_count - 1] * (self.num_chunks - 1)

    def rotation_steps_needed(self) -> list[int]:
        """All distinct rotation steps (for Galois key provisioning)."""
        steps: list[int] = []
        steps.extend(self.replication_steps())
        for phase in self.rotation_phases():
            steps.extend(phase.steps)
        steps.extend(self.merge_rotation_steps())
        return sorted(set(steps))

    def output_layout(self) -> SlotLayout:
        """Layout of the merged dense output.

        Masked merges leave every non-output slot exactly zero (clean);
        a single unmasked chunk leaves sliding-sum residue elsewhere.
        Unmerged (output-layer) packings spread chunk results over separate
        ciphertexts.
        """
        rows = np.arange(self.spec.out_features)
        if not self.merge_output:
            if self.replicated:
                j, b = np.divmod(rows, self.copies)
                return SlotLayout(
                    slot_count=self.slot_count,
                    num_cts=self.num_chunks,
                    ct_index=j.astype(np.int64),
                    slot_index=(b * self.block_width + j).astype(np.int64),
                    clean=False,
                )
            # Scattered: row r reduces into slot 0 of its own ciphertext.
            return SlotLayout(
                slot_count=self.slot_count,
                num_cts=self.num_chunks,
                ct_index=rows.astype(np.int64),
                slot_index=np.zeros_like(rows),
                clean=False,
            )
        if self.replicated:
            j, b = np.divmod(rows, self.copies)
            slot = b * self.block_width + j
            return SlotLayout(
                slot_count=self.slot_count,
                num_cts=1,
                ct_index=np.zeros_like(rows),
                slot_index=slot.astype(np.int64),
                clean=self.needs_mask,
                block_stride=self.block_width,
                offset_span=self.num_chunks,
            )
        # Scattered regime: accumulator merging leaves row r at slot r.
        return SlotLayout(
            slot_count=self.slot_count,
            num_cts=1,
            ct_index=np.zeros_like(rows),
            slot_index=rows.astype(np.int64),
            clean=self.needs_mask,
            block_stride=self.slot_count,
            offset_span=self.spec.out_features,
        )
