"""Fluent builder for packed HE-CNN networks.

Composes the packed layer types into an :class:`~repro.hecnn.network.HeCnn`
together with its plaintext reference, wiring the slot layouts between
layers automatically:

    >>> from repro.fhe import tiny_test_params
    >>> params = tiny_test_params(poly_degree=512, level=7)
    >>> net = (NetworkBuilder("demo", params, seed=1)
    ...        .conv(out_channels=2, kernel_size=3, stride=2, in_size=8)
    ...        .square()
    ...        .dense(8)
    ...        .square()
    ...        .dense(4)
    ...        .build())

The first layer must be a convolution (it defines the client-side input
packing); the final dense layer is automatically built unmerged (LoLa's
output-layer convention, saving the mask level).  Mid-network convolutions
are lowered to matrix layers via :func:`~repro.hecnn.models
.conv_as_dense_matrix`, exactly like the paper's FxHENN-CIFAR10 ``Cnv2``.
"""

from __future__ import annotations

import numpy as np

from ..fhe.params import CkksParameters
from .data import glorot_weights, small_bias
from .layers import (
    PackedAveragePool,
    PackedConv,
    PackedDense,
    PackedSquare,
)
from .network import HeCnn
from .packing import ConvPacking, DensePacking
from .reference import (
    ConvSpec,
    DenseSpec,
    PlainAveragePool,
    PlainConv2d,
    PlainDense,
    PlainNetwork,
    PlainSquare,
    PoolSpec,
)


class NetworkBuilder:
    """Accumulates layers; call :meth:`build` to obtain the network.

    Weights default to seeded Glorot samples; pass explicit ``weights`` /
    ``bias`` arrays to any layer method to override.
    """

    def __init__(self, name: str, params: CkksParameters, seed: int = 0) -> None:
        self.name = name
        self.params = params
        self.rng = np.random.default_rng(seed)
        self._layers: list = []
        self._plain: list = []
        self._conv_packing: ConvPacking | None = None
        self._act_count = 0
        self._dense_count = 0
        self._conv_count = 0
        #: (channels, spatial size) of the current feature map, if grid-shaped.
        self._grid: tuple[int, int] | None = None

    # -- layer methods -----------------------------------------------------------

    def conv(
        self,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        in_channels: int | None = None,
        in_size: int | None = None,
        weights: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        name: str | None = None,
    ) -> "NetworkBuilder":
        """Add a convolution.

        The first conv defines the input image (``in_channels``/``in_size``
        required); later convs are lowered to matrix layers over the
        current grid.
        """
        self._conv_count += 1
        name = name or f"Cnv{self._conv_count}"
        if not self._layers:
            if in_channels is None or in_size is None:
                in_channels, in_size = in_channels or 1, in_size
            if in_size is None:
                raise ValueError("the first conv needs in_size")
            spec = ConvSpec(
                in_channels=in_channels, out_channels=out_channels,
                kernel_size=kernel_size, stride=stride, padding=padding,
                in_size=in_size,
            )
            w = weights if weights is not None else glorot_weights(
                (out_channels, in_channels, kernel_size, kernel_size), self.rng
            )
            b = bias if bias is not None else small_bias(out_channels, self.rng)
            packing = ConvPacking(spec=spec, slot_count=self.params.slot_count)
            self._conv_packing = packing
            self._layers.append(PackedConv(name, packing, w, b))
            self._plain.append(PlainConv2d(spec, w, b))
            self._grid = (out_channels, spec.out_size)
            return self
        # Mid-network conv: lower to a matrix layer on the current grid.
        if self._grid is None:
            raise ValueError("mid-network conv needs a grid-shaped input")
        from .models import conv_as_dense_matrix

        channels, size = self._grid
        spec = ConvSpec(
            in_channels=channels, out_channels=out_channels,
            kernel_size=kernel_size, stride=stride, padding=padding,
            in_size=size,
        )
        w = weights if weights is not None else glorot_weights(
            (out_channels, channels, kernel_size, kernel_size), self.rng
        )
        b = bias if bias is not None else small_bias(out_channels, self.rng)
        matrix, bias_vec = conv_as_dense_matrix(spec, w, b)
        dspec = DenseSpec(
            in_features=channels * size * size,
            out_features=spec.output_count,
        )
        packing = DensePacking(
            spec=dspec, input_layout=self._layers[-1].output_layout
        )
        self._layers.append(PackedDense(name, packing, matrix, bias_vec))
        self._plain.append(PlainDense(dspec, matrix, bias_vec))
        self._grid = (out_channels, spec.out_size)
        return self

    def square(self, name: str | None = None) -> "NetworkBuilder":
        """Add a square activation over the current layout."""
        self._require_started()
        self._act_count += 1
        name = name or f"Act{self._act_count}"
        self._layers.append(PackedSquare(name, self._layers[-1].output_layout))
        self._plain.append(PlainSquare())
        return self

    def average_pool(self, k: int, name: str | None = None) -> "NetworkBuilder":
        """Add non-overlapping k x k average pooling (grid input only)."""
        self._require_started()
        if self._grid is None:
            raise ValueError("average_pool needs a grid-shaped input")
        channels, size = self._grid
        spec = PoolSpec(channels=channels, in_size=size, k=k)
        name = name or f"Pool{k}x{k}"
        self._layers.append(
            PackedAveragePool(name, spec, self._layers[-1].output_layout)
        )
        self._plain.append(PlainAveragePool(spec))
        self._grid = (channels, spec.out_size)
        return self

    def dense(
        self,
        out_features: int,
        weights: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        name: str | None = None,
    ) -> "NetworkBuilder":
        """Add a fully connected layer over the current layout."""
        self._require_started()
        self._dense_count += 1
        name = name or f"Fc{self._dense_count}"
        in_features = self._layers[-1].output_layout.value_count
        spec = DenseSpec(in_features=in_features, out_features=out_features)
        w = weights if weights is not None else glorot_weights(
            (out_features, in_features), self.rng
        )
        b = bias if bias is not None else small_bias(out_features, self.rng)
        packing = DensePacking(
            spec=spec, input_layout=self._layers[-1].output_layout
        )
        self._layers.append(PackedDense(name, packing, w, b))
        self._plain.append(PlainDense(spec, w, b))
        self._grid = None
        return self

    # -- assembly ------------------------------------------------------------------

    def build(self, unmerge_final_dense: bool = True) -> HeCnn:
        """Assemble the network (re-packing the last dense as unmerged)."""
        self._require_started()
        layers = list(self._layers)
        if unmerge_final_dense and isinstance(layers[-1], PackedDense):
            last = layers[-1]
            repacked = DensePacking(
                spec=last.packing.spec,
                input_layout=last.packing.input_layout,
                merge_output=False,
            )
            layers[-1] = PackedDense(
                last.name, repacked, last.weights, last.bias
            )
        return HeCnn(
            name=self.name,
            poly_degree=self.params.poly_degree,
            base_level=self.params.level,
            input_packing=self._conv_packing,
            layers=layers,
            plain_reference=PlainNetwork(self._plain),
            prime_bits=self.params.prime_bits,
        )

    def _require_started(self) -> None:
        if not self._layers:
            raise ValueError("add the input conv layer first")
