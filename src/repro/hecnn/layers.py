"""Packed HE-CNN layers: functional encrypted execution + analytic traces.

Each layer implements two faces of the same computation:

* :meth:`forward` runs the layer on real ciphertexts via an
  :class:`~repro.fhe.ops.Evaluator` — the functional ground truth;
* :meth:`trace` computes, from geometry alone, the exact HE-operation
  counts, pipeline work-unit counts and rotation steps the forward pass
  will perform — the input to the FPGA performance model and DSE.

The test suite asserts that an :class:`~repro.fhe.ops.OperationRecorder`
attached to :meth:`forward` reproduces :meth:`trace` op-for-op.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..fhe.ciphertext import Ciphertext
from ..fhe.noise import NoiseBound, NoiseEstimator
from ..fhe.ops import Evaluator, fold_composite_steps
from ..optypes import HeOp
from .packing import ConvPacking, DensePacking, SlotLayout
from .reference import PoolSpec
from .trace import LayerTrace

#: Monotone ids distinguishing layer instances in the context-level
#: plaintext cache (:meth:`~repro.fhe.ops.Evaluator.encode_cached`), so
#: weight plaintexts survive across the fresh Evaluator each inference uses.
_cache_tokens = itertools.count()


class PackedLayer:
    """Interface of a packed HE-CNN layer."""

    name: str

    def forward(self, evaluator: Evaluator, cts: list[Ciphertext]) -> list[Ciphertext]:
        raise NotImplementedError

    def trace(self, level: int) -> LayerTrace:
        """Analytic trace when entered at ciphertext ``level``."""
        raise NotImplementedError

    @property
    def levels_consumed(self) -> int:
        """Rescales applied between layer input and output (always 1 for
        the LoLa layer types: one multiplication per layer)."""
        return 1

    @property
    def output_layout(self) -> SlotLayout:
        raise NotImplementedError

    def rotation_steps(self) -> list[int]:
        return []

    def propagate_noise(
        self, est: NoiseEstimator, bound: NoiseBound
    ) -> NoiseBound:
        """Push an analytic noise bound through this layer's op structure.

        Mirrors :meth:`forward` with the estimator's op set, so per-layer
        noise budgets are observable without the secret key (the gauges
        behind ``repro profile``).  Conservative: worst-case operand
        magnitudes at every step.
        """
        raise NotImplementedError


@dataclass
class PackedConv(PackedLayer):
    """LoLa convolution: one ``PCmult -> Rescale -> CCadd`` pass per kernel
    offset per output group, plus a bias PCadd (an **NKS** layer)."""

    name: str
    packing: ConvPacking
    weights: np.ndarray
    bias: np.ndarray
    _cache_token: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        s = self.packing.spec
        expected = (s.out_channels, s.in_channels, s.kernel_size, s.kernel_size)
        if self.weights.shape != expected:
            raise ValueError(f"weights must have shape {expected}")
        if self.bias.shape != (s.out_channels,):
            raise ValueError(f"bias must have shape ({s.out_channels},)")
        self._cache_token = next(_cache_tokens)

    @property
    def output_layout(self) -> SlotLayout:
        return self.packing.output_layout()

    def forward(self, evaluator: Evaluator, cts: list[Ciphertext]) -> list[Ciphertext]:
        k = self.packing.spec.kernel_offsets
        if len(cts) != k:
            raise ValueError(f"expected {k} per-offset ciphertexts, got {len(cts)}")
        outputs: list[Ciphertext] = []
        for g in range(self.packing.num_groups):
            acc: Ciphertext | None = None
            for offset in range(k):
                term = evaluator.multiply_values_rescale(
                    cts[offset],
                    lambda g=g, o=offset: self.packing.weight_vector(
                        g, o, self.weights
                    ),
                    cache_key=(self._cache_token, "w", g, offset),
                )
                acc = term if acc is None else evaluator.add(acc, term)
            bias_pt = evaluator.encode_cached(
                lambda g=g: self.packing.bias_vector(g, self.bias),
                level=acc.level,
                scale=acc.scale,
                cache_key=(self._cache_token, "b", g),
            )
            outputs.append(evaluator.add_plain(acc, bias_pt))
        return outputs

    def propagate_noise(
        self, est: NoiseEstimator, bound: NoiseBound
    ) -> NoiseBound:
        k = self.packing.spec.kernel_offsets
        w_bound = max(float(np.max(np.abs(self.weights))), 1e-12)
        term = est.multiply_values_rescale(bound, w_bound)
        acc = term
        for _ in range(k - 1):
            acc = est.add(acc, term)
        return est.add_plain(acc, float(np.max(np.abs(self.bias))))

    def trace(self, level: int) -> LayerTrace:
        k = self.packing.spec.kernel_offsets
        g = self.packing.num_groups
        counts = {
            HeOp.PC_MULT: k * g,
            HeOp.RESCALE: k * g,
            HeOp.CC_ADD: (k - 1) * g,
            HeOp.PC_ADD: g,
        }
        return LayerTrace(
            name=self.name,
            kind="NKS",
            op_counts=counts,
            nks_units=k * g,
            ks_units=0,
            level=level,
            num_input_cts=k,
            num_output_cts=g,
            macs=self.packing.spec.macs,
            plaintext_count=(k + 1) * g,
        )


@dataclass
class PackedSquare(PackedLayer):
    """Square activation: ``CCmult -> Relinearize -> Rescale`` per
    ciphertext (a **KS** layer — Relinearize is a KeySwitch)."""

    name: str
    layout: SlotLayout

    @property
    def output_layout(self) -> SlotLayout:
        return self.layout

    def forward(self, evaluator: Evaluator, cts: list[Ciphertext]) -> list[Ciphertext]:
        return [evaluator.square_relinearize_rescale(ct) for ct in cts]

    def propagate_noise(
        self, est: NoiseEstimator, bound: NoiseBound
    ) -> NoiseBound:
        return est.square_relinearize_rescale(bound)

    def trace(self, level: int) -> LayerTrace:
        n = self.layout.num_cts
        counts = {HeOp.CC_MULT: n, HeOp.KEY_SWITCH: n, HeOp.RESCALE: n}
        return LayerTrace(
            name=self.name,
            kind="KS",
            op_counts=counts,
            nks_units=n,
            ks_units=n,
            level=level,
            num_input_cts=n,
            num_output_cts=n,
            macs=self.layout.value_count,  # one multiply per activation
            plaintext_count=0,
        )


@dataclass
class PackedDense(PackedLayer):
    """LoLa fully connected layer (a **KS** layer).

    ``PCmult`` with stacked/masked matrix rows, rotate-and-sum reduction,
    chunk merging and a bias PCadd.  See :class:`~repro.hecnn.packing
    .DensePacking` for the two packing regimes.
    """

    name: str
    packing: DensePacking
    weights: np.ndarray
    bias: np.ndarray
    _cache_token: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        spec = self.packing.spec
        if self.weights.shape != (spec.out_features, spec.in_features):
            raise ValueError(
                f"weights must have shape {(spec.out_features, spec.in_features)}"
            )
        if self.bias.shape != (spec.out_features,):
            raise ValueError(f"bias must have shape ({spec.out_features},)")
        self._cache_token = next(_cache_tokens)

    @property
    def output_layout(self) -> SlotLayout:
        return self.packing.output_layout()

    @property
    def levels_consumed(self) -> int:
        """Masked merges spend one extra level on the mask PCmult."""
        return 2 if self.packing.needs_mask else 1

    def rotation_steps(self) -> list[int]:
        """Rotation steps to provision keys for.

        Includes the pairwise-composite steps the evaluator's hoisted
        rotate-fold uses at runtime; the layer's *analytic* trace keeps the
        logical schedule (``packing.rotation_steps_needed()``) unchanged.
        """
        pk = self.packing
        steps = set(pk.rotation_steps_needed())
        steps.update(fold_composite_steps(pk.replication_steps(), pk.slot_count))
        for phase in pk.rotation_phases():
            steps.update(fold_composite_steps(phase.steps, pk.slot_count))
        return sorted(steps)

    def _rotate_sum(self, evaluator: Evaluator, ct: Ciphertext) -> Ciphertext:
        for phase in self.packing.rotation_phases():
            ct = evaluator.rotate_fold(ct, phase.steps)
        return ct

    def forward(self, evaluator: Evaluator, cts: list[Ciphertext]) -> list[Ciphertext]:
        pk = self.packing
        if len(cts) != pk.input_layout.num_cts:
            raise ValueError(
                f"expected {pk.input_layout.num_cts} ciphertexts, got {len(cts)}"
            )
        inputs = list(cts)
        if pk.replicated and pk.copies > 1:
            base = evaluator.rotate_fold(inputs[0], pk.replication_steps())
            inputs = [base]

        chunk_results: list[Ciphertext] = []
        for chunk in range(pk.num_chunks):
            partial: Ciphertext | None = None
            for g, ct in enumerate(inputs):
                term = evaluator.multiply_values_rescale(
                    ct,
                    lambda c=chunk, g=g: pk.weight_vector(c, g, self.weights),
                    cache_key=(self._cache_token, "w", chunk, g),
                )
                partial = term if partial is None else evaluator.add(partial, term)
            reduced = self._rotate_sum(evaluator, partial)
            if pk.needs_mask:
                # Isolate this chunk's output slots so merging cannot
                # pollute other chunks' results (see DensePacking.needs_mask).
                reduced = evaluator.multiply_values_rescale(
                    reduced,
                    lambda c=chunk: pk.mask_vector(c),
                    cache_key=(self._cache_token, "m", chunk),
                )
            chunk_results.append(reduced)

        if not pk.merge_output:
            outputs = []
            for chunk, result in enumerate(chunk_results):
                bias_pt = evaluator.encode_cached(
                    lambda c=chunk: pk.chunk_bias_vector(c, self.bias),
                    level=result.level,
                    scale=result.scale,
                    cache_key=(self._cache_token, "b", chunk),
                )
                outputs.append(evaluator.add_plain(result, bias_pt))
            return outputs

        if pk.replicated:
            merged = chunk_results[0]
            for other in chunk_results[1:]:
                merged = evaluator.add(merged, other)
        else:
            # Shift-by-one accumulator: row r ends up at slot r.
            merged = chunk_results[-1]
            for result in reversed(chunk_results[:-1]):
                merged = evaluator.rotate(merged, pk.slot_count - 1)
                merged = evaluator.add(merged, result)

        bias_pt = evaluator.encode_cached(
            lambda: pk.bias_vector(self.bias),
            level=merged.level,
            scale=merged.scale,
            cache_key=(self._cache_token, "b"),
        )
        return [evaluator.add_plain(merged, bias_pt)]

    def propagate_noise(
        self, est: NoiseEstimator, bound: NoiseBound
    ) -> NoiseBound:
        pk = self.packing
        w_bound = max(float(np.max(np.abs(self.weights))), 1e-12)
        if pk.replicated and pk.copies > 1:
            for _ in pk.replication_steps():
                bound = est.add(bound, est.rotate(bound))
        term = est.multiply_values_rescale(bound, w_bound)
        g = 1 if pk.replicated else pk.input_layout.num_cts
        partial = term
        for _ in range(g - 1):
            partial = est.add(partial, term)
        for phase in pk.rotation_phases():
            for _ in phase.steps:
                partial = est.add(partial, est.rotate(partial))
        if pk.needs_mask:
            partial = est.multiply_values_rescale(partial, 1.0)
        if pk.merge_output and pk.num_chunks > 1:
            # Every chunk carries the same worst-case bound; merging adds
            # them (merge rotations only add key-switch noise).
            merged = partial
            for _ in range(pk.num_chunks - 1):
                other = partial if pk.replicated else est.rotate(partial)
                merged = est.add(merged, other)
            partial = merged
        return est.add_plain(partial, float(np.max(np.abs(self.bias))))

    def trace(self, level: int) -> LayerTrace:
        pk = self.packing
        g = 1 if pk.replicated else pk.input_layout.num_cts
        repl_steps = pk.replication_steps()
        rot_per_chunk = sum(len(ph.steps) for ph in pk.rotation_phases())
        merge_rot = len(pk.merge_rotation_steps())
        chunks = pk.num_chunks
        mask_ops = chunks if pk.needs_mask else 0
        merge_adds = chunks - 1 if pk.merge_output else 0
        counts = {
            HeOp.PC_MULT: chunks * g + mask_ops,
            HeOp.RESCALE: chunks * g + mask_ops,
            HeOp.KEY_SWITCH: len(repl_steps) + chunks * rot_per_chunk + merge_rot,
            HeOp.CC_ADD: (
                len(repl_steps)
                + chunks * (g - 1)
                + chunks * rot_per_chunk
                + merge_adds
            ),
            HeOp.PC_ADD: 1 if pk.merge_output else chunks,
        }
        return LayerTrace(
            name=self.name,
            kind="KS",
            op_counts=counts,
            nks_units=chunks * g + mask_ops,
            ks_units=counts[HeOp.KEY_SWITCH],
            level=level,
            num_input_cts=pk.input_layout.num_cts,
            num_output_cts=1 if pk.merge_output else chunks,
            rotation_steps=tuple(pk.rotation_steps_needed()),
            macs=pk.spec.macs,
            plaintext_count=chunks * g + mask_ops + 1,
        )


@dataclass
class PackedAveragePool(PackedLayer):
    """Non-overlapping k x k average pooling (a **KS** layer).

    Uses the separable reduction: ``k - 1`` horizontal rotate-adds of the
    input followed by ``k - 1`` vertical ones (``2(k-1)`` rotations instead
    of ``k^2 - 1``), leaving each window's sum at its anchor slot; a mask
    PCmult then keeps the anchors, folds in the ``1/k^2`` mean factor, and
    zeroes the residue (consuming one level, like the dense merge mask).

    The input must be in the conv-style map-major layout: value
    ``m * P + p`` at slot ``m_local * P + p`` of its group ciphertext.
    """

    name: str
    spec: PoolSpec
    input_layout: SlotLayout
    _cache_token: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        expected = self.spec.channels * self.spec.in_positions
        if self.input_layout.value_count != expected:
            raise ValueError(
                f"layout carries {self.input_layout.value_count} values, "
                f"pool expects {expected}"
            )
        self._cache_token = next(_cache_tokens)

    @property
    def levels_consumed(self) -> int:
        return 1

    def _maps_per_ct(self) -> int:
        return -(-self.spec.channels // self.input_layout.num_cts)

    def rotation_steps(self) -> list[int]:
        k, s = self.spec.k, self.spec.in_size
        horizontal = list(range(1, k))
        vertical = [dy * s for dy in range(1, k)]
        return sorted(set(horizontal + vertical))

    def _anchor_slots(self, ct: int) -> np.ndarray:
        """Slots holding window anchors within one input ciphertext."""
        s = self.spec
        mpg = self._maps_per_ct()
        anchors = []
        for m_local in range(mpg):
            m = ct * mpg + m_local
            if m >= s.channels:
                break
            base = m_local * s.in_positions
            for oy in range(s.out_size):
                for ox in range(s.out_size):
                    anchors.append(base + s.k * oy * s.in_size + s.k * ox)
        return np.array(anchors, dtype=np.int64)

    def mask_vector(self, ct: int) -> np.ndarray:
        vec = np.zeros(self.input_layout.slot_count)
        vec[self._anchor_slots(ct)] = 1.0 / (self.spec.k ** 2)
        return vec

    @property
    def output_layout(self) -> SlotLayout:
        s = self.spec
        mpg = self._maps_per_ct()
        values = np.arange(s.output_count)
        m, op = np.divmod(values, s.out_positions)
        oy, ox = np.divmod(op, s.out_size)
        ct = m // mpg
        slot = (m % mpg) * s.in_positions + s.k * oy * s.in_size + s.k * ox
        return SlotLayout(
            slot_count=self.input_layout.slot_count,
            num_cts=self.input_layout.num_cts,
            ct_index=ct.astype(np.int64),
            slot_index=slot.astype(np.int64),
            clean=True,
        )

    def forward(self, evaluator: Evaluator, cts: list[Ciphertext]) -> list[Ciphertext]:
        if len(cts) != self.input_layout.num_cts:
            raise ValueError(
                f"expected {self.input_layout.num_cts} ciphertexts"
            )
        k, s = self.spec.k, self.spec.in_size
        outputs = []
        for i, ct in enumerate(cts):
            # Horizontal window sums: accumulate rotations of the original.
            acc = ct
            for dx in range(1, k):
                acc = evaluator.add(acc, evaluator.rotate(ct, dx))
            # Vertical window sums over the horizontal partials.
            rows = acc
            for dy in range(1, k):
                rows = evaluator.add(rows, evaluator.rotate(acc, dy * s))
            outputs.append(
                evaluator.multiply_values_rescale(
                    rows,
                    lambda i=i: self.mask_vector(i),
                    cache_key=(self._cache_token, "m", i),
                )
            )
        return outputs

    def propagate_noise(
        self, est: NoiseEstimator, bound: NoiseBound
    ) -> NoiseBound:
        k = self.spec.k
        acc = bound
        for _ in range(2 * (k - 1)):
            acc = est.add(acc, est.rotate(acc))
        return est.multiply_values_rescale(acc, 1.0 / (k * k))

    def trace(self, level: int) -> LayerTrace:
        k = self.spec.k
        n = self.input_layout.num_cts
        rot_per_ct = 2 * (k - 1)
        counts = {
            HeOp.KEY_SWITCH: n * rot_per_ct,
            HeOp.CC_ADD: n * rot_per_ct,
            HeOp.PC_MULT: n,
            HeOp.RESCALE: n,
        }
        return LayerTrace(
            name=self.name,
            kind="KS",
            op_counts=counts,
            nks_units=n,
            ks_units=n * rot_per_ct,
            level=level,
            num_input_cts=n,
            num_output_cts=n,
            rotation_steps=tuple(self.rotation_steps()),
            macs=self.spec.output_count * k * k,
            plaintext_count=n,
        )
