"""The paper's benchmark HE-CNN models, plus scaled-down test variants.

Paper Table VI:

================ ============================== =========
Network          Layers                         Dataset
================ ============================== =========
FxHENN-MNIST     Cnv1, Act1, Fc1, Act2, Fc2     MNIST
FxHENN-CIFAR10   Cnv1, Act1, Cnv2, Act2, Fc2    CIFAR-10
================ ============================== =========

Both networks have multiplication depth 5 and follow the LoLa/CryptoNets
topology:

* **FxHENN-MNIST** (N=8192): Conv 5 maps of 5x5 stride 2 pad 1 on 28x28
  (-> 5x13x13 = 845), square, FC 845->100, square, FC 100->10.  These
  shapes reproduce the paper's Table IV exactly: Cnv1 MACs = 169*25*5 =
  21_100-ish (2.11e4) and Fc1 MACs = 845*100 = 8.45e4.
* **FxHENN-CIFAR10** (N=16384): Conv 83 maps of 8x8x3 stride 2 on 32x32
  (-> 83x13x13 = 14_027), square, Conv2 163 maps of 10x10x83 stride 1
  (-> 163x4x4 = 2_608) *expressed as a matrix layer* (mid-network
  convolutions cannot use the client-side per-offset packing, so LoLa — and
  we — lower them to matrix multiplication), square, FC 2608->10.

Weights are deterministic Glorot samples (see DESIGN.md substitutions:
the paper's trained LoLa weights are unavailable and accuracy is orthogonal
to the accelerator framework).  Weight *values* never affect the operation
trace — only shapes do.
"""

from __future__ import annotations

import numpy as np

from ..fhe.params import CkksParameters, fxhenn_cifar10_params, fxhenn_mnist_params
from .network import HeCnn
from .reference import ConvSpec


def conv_as_dense_matrix(
    spec: ConvSpec, weights: np.ndarray, bias: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Lower a convolution to an equivalent dense matrix.

    Input features are indexed ``c * P_in + p_in`` (map-major, matching the
    previous packed layer's output layout); output features ``m * P_out +
    p_out``.  The resulting (sparse, materialized dense) matrix computes
    exactly the convolution.
    """
    in_positions = spec.in_size * spec.in_size
    matrix = np.zeros((spec.output_count, spec.in_channels * in_positions))
    bias_vec = np.zeros(spec.output_count)
    p_out = spec.out_positions
    for m in range(spec.out_channels):
        for oy in range(spec.out_size):
            for ox in range(spec.out_size):
                out_idx = m * p_out + oy * spec.out_size + ox
                bias_vec[out_idx] = bias[m]
                for c in range(spec.in_channels):
                    for ky in range(spec.kernel_size):
                        for kx in range(spec.kernel_size):
                            iy = oy * spec.stride + ky - spec.padding
                            ix = ox * spec.stride + kx - spec.padding
                            if 0 <= iy < spec.in_size and 0 <= ix < spec.in_size:
                                in_idx = c * in_positions + iy * spec.in_size + ix
                                matrix[out_idx, in_idx] = weights[m, c, ky, kx]
    return matrix, bias_vec


def _build_conv_square_dense_model(
    name: str,
    params: CkksParameters,
    conv_spec: ConvSpec,
    dense_shapes: list[int],
    seed: int,
    conv2_spec: ConvSpec | None = None,
) -> HeCnn:
    """Assemble Conv -> Square -> [Conv2-as-matrix -> Square ->] Dense chain
    via :class:`~repro.hecnn.builder.NetworkBuilder`."""
    from .builder import NetworkBuilder

    builder = NetworkBuilder(name, params, seed=seed)
    builder.conv(
        out_channels=conv_spec.out_channels,
        kernel_size=conv_spec.kernel_size,
        stride=conv_spec.stride,
        padding=conv_spec.padding,
        in_channels=conv_spec.in_channels,
        in_size=conv_spec.in_size,
    )
    builder.square()

    dense_idx = 1
    if conv2_spec is not None:
        builder.conv(
            out_channels=conv2_spec.out_channels,
            kernel_size=conv2_spec.kernel_size,
            stride=conv2_spec.stride,
            padding=conv2_spec.padding,
            name="Cnv2",
        )
        builder.square()
        dense_idx = 2

    for i, out_features in enumerate(dense_shapes):
        builder.dense(out_features, name=f"Fc{dense_idx}")
        if i != len(dense_shapes) - 1:
            builder.square()
        dense_idx += 1

    return builder.build(unmerge_final_dense=True)


def fxhenn_mnist_model(seed: int = 0, params: CkksParameters | None = None) -> HeCnn:
    """The paper's FxHENN-MNIST: Cnv1, Act1, Fc1, Act2, Fc2 at N=8192."""
    params = params or fxhenn_mnist_params()
    conv = ConvSpec(
        in_channels=1, out_channels=5, kernel_size=5, stride=2, padding=1,
        in_size=28,
    )
    model = _build_conv_square_dense_model(
        "FxHENN-MNIST", params, conv, dense_shapes=[100, 10], seed=seed
    )
    return model


def fxhenn_cifar10_model(seed: int = 0, params: CkksParameters | None = None) -> HeCnn:
    """The paper's FxHENN-CIFAR10: Cnv1, Act1, Cnv2, Act2, Fc2 at N=16384.

    Note: functional execution requires ``params.functional_variant()``;
    with the default (36-bit) preset this model is trace/model-only.
    """
    params = params or fxhenn_cifar10_params()
    conv1 = ConvSpec(
        in_channels=3, out_channels=83, kernel_size=8, stride=2, padding=0,
        in_size=32,
    )
    conv2 = ConvSpec(
        in_channels=83, out_channels=163, kernel_size=10, stride=1, padding=0,
        in_size=13,
    )
    return _build_conv_square_dense_model(
        "FxHENN-CIFAR10", params, conv1, dense_shapes=[10], seed=seed,
        conv2_spec=conv2,
    )


def tiny_mnist_model(
    seed: int = 0, params: CkksParameters | None = None
) -> HeCnn:
    """A scaled-down MNIST-topology model for fast functional tests.

    Conv 2 maps of 3x3 stride 2 on 8x8 (-> 2x3x3 = 18), square, FC 18->8,
    square, FC 8->4 — same layer taxonomy (NKS conv, KS dense, squares) at
    N=512.
    """
    from ..fhe.params import tiny_test_params

    params = params or tiny_test_params(poly_degree=512, level=7)
    conv = ConvSpec(
        in_channels=1, out_channels=2, kernel_size=3, stride=2, padding=0,
        in_size=8,
    )
    return _build_conv_square_dense_model(
        "Tiny-MNIST", params, conv, dense_shapes=[8, 4], seed=seed
    )
