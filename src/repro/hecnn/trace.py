"""Operation traces and workload accounting for HE-CNN layers.

A :class:`LayerTrace` is the analytic record of what a layer *will* execute:
HE-operation counts, the NKS/KS pipeline work-unit counts consumed by the
latency model (paper Eqs. 1-2), the rotation steps needed for key
provisioning, and the ciphertext level at which the layer operates.

Traces are computed from layer geometry alone — no FHE execution — and are
validated in the test suite against an :class:`~repro.fhe.ops
.OperationRecorder` attached to a real encrypted run.

The module also provides the HE-MAC cost model behind paper Table IV
("MACs of HOPs"): the number of basic modular operations each HE operation
expands into, counting one NTT butterfly as 3 basic ops (multiply + add +
subtract) and one elementwise lane as 1 op per coefficient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..optypes import HeOp


@dataclass(frozen=True)
class LayerTrace:
    """Analytic operation trace of a single HE-CNN layer.

    Attributes
    ----------
    name / kind:
        Layer name and pipeline classification: ``"KS"`` if the layer
        contains KeySwitch operations, else ``"NKS"`` (paper Sec. V-A).
    op_counts:
        HE operations by type.
    nks_units:
        Number of elementwise pipeline passes (PCmult/CCmult chains) — the
        ``N_in`` of Eq. 1.
    ks_units:
        Number of KeySwitch invocations — the ``N_in`` of Eq. 2 (each
        occupies ``L`` pipeline intervals, Fig. 3).
    level:
        Ciphertext level on entry to the layer.
    num_input_cts / num_output_cts:
        Ciphertext stream widths at the layer boundary (buffer sizing).
    rotation_steps:
        Distinct Galois rotation steps used (key provisioning).
    macs:
        Plain-CNN MAC count of the original layer (Table IV "MACs").
    plaintext_count:
        Encoded weight/bias plaintexts the layer streams from memory.
    """

    name: str
    kind: str
    op_counts: dict[HeOp, int]
    nks_units: int
    ks_units: int
    level: int
    num_input_cts: int
    num_output_cts: int
    rotation_steps: tuple[int, ...] = ()
    macs: int = 0
    plaintext_count: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("KS", "NKS"):
            raise ValueError("kind must be 'KS' or 'NKS'")
        ks_in_counts = self.op_counts.get(HeOp.KEY_SWITCH, 0)
        if (self.kind == "KS") != (ks_in_counts > 0):
            raise ValueError("kind must reflect presence of KeySwitch ops")

    @property
    def hop_count(self) -> int:
        """Total HE operations (the paper's "HOPs")."""
        return sum(self.op_counts.values())

    @property
    def keyswitch_count(self) -> int:
        """KeySwitch operations (the paper's "KS" column)."""
        return self.op_counts.get(HeOp.KEY_SWITCH, 0)

    def he_macs(self, poly_degree: int) -> int:
        """Basic modular operations this layer expands into (Table IV)."""
        return sum(
            count * he_op_basic_ops(op, poly_degree, self.level)
            for op, count in self.op_counts.items()
        )

    def ops_used(self) -> tuple[HeOp, ...]:
        """HE operation modules this layer invokes (paper Table II column)."""
        from ..optypes import module_for

        mods = {module_for(op) for op, c in self.op_counts.items() if c > 0}
        order = (HeOp.CC_ADD, HeOp.PC_MULT, HeOp.CC_MULT, HeOp.RESCALE, HeOp.KEY_SWITCH)
        return tuple(op for op in order if op in mods)


@dataclass(frozen=True)
class NetworkTrace:
    """Aggregated trace of a full HE-CNN.

    ``batch_lanes`` annotates slot-batched (CryptoNets-style) traces with
    the number of images riding the slot lanes — ``None`` for per-image
    (LoLa) packing.  The operation counts themselves are lane-invariant
    (that is the point of batching); the field only drives amortized
    per-image accounting in the serving layer.
    """

    name: str
    layers: tuple[LayerTrace, ...]
    poly_degree: int
    base_level: int
    prime_bits: int = 30
    batch_lanes: int | None = None

    def __post_init__(self) -> None:
        if self.batch_lanes is not None and not (
            1 <= self.batch_lanes <= self.poly_degree // 2
        ):
            raise ValueError(
                f"batch_lanes must be in [1, N/2] = [1, "
                f"{self.poly_degree // 2}], got {self.batch_lanes}"
            )

    @property
    def hop_count(self) -> int:
        return sum(layer.hop_count for layer in self.layers)

    @property
    def keyswitch_count(self) -> int:
        return sum(layer.keyswitch_count for layer in self.layers)

    @property
    def macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def he_macs(self) -> int:
        return sum(layer.he_macs(self.poly_degree) for layer in self.layers)

    def total_op_counts(self) -> dict[HeOp, int]:
        out: dict[HeOp, int] = {}
        for layer in self.layers:
            for op, c in layer.op_counts.items():
                out[op] = out.get(op, 0) + c
        return out

    def rotation_steps(self) -> list[int]:
        steps: set[int] = set()
        for layer in self.layers:
            steps.update(layer.rotation_steps)
        return sorted(steps)

    def model_size_bytes(self) -> int:
        """Encoded plaintext model size (Table VI "Mod.Size").

        Each weight/bias plaintext is an RNS polynomial at its layer's
        level — ``level * N`` residues stored at the native word width
        (``prime_bits`` bits each), as the accelerator streams them from
        off-chip DRAM.
        """
        bits = sum(
            layer.plaintext_count * layer.level * self.poly_degree * self.prime_bits
            for layer in self.layers
        )
        return bits // 8

    def model_wire_size_bytes(self) -> int:
        """Encoded model size in the ``repro.fhe.serialization`` wire format.

        Where :meth:`model_size_bytes` prices the accelerator's native
        DRAM stream (residues packed at ``prime_bits``), this is the exact
        byte count of shipping every weight/bias plaintext over the wire —
        the client-upload column of the Table VI accounting.
        """
        from ..fhe.serialization import plaintext_wire_size

        return sum(
            layer.plaintext_count
            * plaintext_wire_size(self.poly_degree, layer.level)
            for layer in self.layers
        )

    def input_wire_bytes(self) -> int:
        """Exact wire bytes of the encrypted input the client uploads."""
        from ..fhe.serialization import ciphertext_wire_size

        first = self.layers[0]
        return first.num_input_cts * ciphertext_wire_size(
            self.poly_degree, first.level
        )

    def boundary_wire_bytes(self, cut_after: int) -> int:
        """Exact wire bytes crossing the cut after layer ``cut_after``.

        This is what one pipeline stage ships to the next when the network
        is split across devices: the upstream layer's output ciphertexts,
        serialized at the level the downstream layer receives them.
        """
        if not 0 <= cut_after < len(self.layers) - 1:
            raise ValueError(
                f"cut_after must be in [0, {len(self.layers) - 2}], "
                f"got {cut_after}"
            )
        from ..fhe.serialization import ciphertext_wire_size

        upstream = self.layers[cut_after]
        downstream = self.layers[cut_after + 1]
        return upstream.num_output_cts * ciphertext_wire_size(
            self.poly_degree, downstream.level
        )

    def slice(self, start: int, stop: int) -> "NetworkTrace":
        """Contiguous sub-network ``layers[start:stop]`` as its own trace.

        The slice keeps the parent's CKKS geometry and gets a
        deterministic derived name (``"{name}[start:stop]"``) so design
        caches key each stage of a cluster partition distinctly; a
        full-range slice returns ``self`` unchanged, sharing the parent's
        cache entry.
        """
        if not 0 <= start < stop <= len(self.layers):
            raise ValueError(
                f"invalid slice [{start}:{stop}] of {len(self.layers)} layers"
            )
        if start == 0 and stop == len(self.layers):
            return self
        return NetworkTrace(
            name=f"{self.name}[{start}:{stop}]",
            layers=self.layers[start:stop],
            poly_degree=self.poly_degree,
            base_level=self.base_level,
            prime_bits=self.prime_bits,
            batch_lanes=self.batch_lanes,
        )

    def layer(self, name: str) -> LayerTrace:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")


# ---------------------------------------------------------------------------
# HE-MAC cost model (Table IV)
# ---------------------------------------------------------------------------


def ntt_pass_basic_ops(poly_degree: int) -> int:
    """Basic ops of one NTT/INTT pass: N/2 * log2(N) butterflies x 3."""
    return 3 * (poly_degree // 2) * int(math.log2(poly_degree))


def he_op_basic_ops(op: HeOp, poly_degree: int, level: int) -> int:
    """Basic modular operations one HE operation expands into.

    Derived from the RNS-CKKS algorithms implemented in ``repro.fhe``:

    * elementwise ops touch ``components * level * N`` lanes;
    * Rescale INTTs all ``L`` rows, corrects ``L-1`` rows (2 lanes each)
      and NTTs them back — per component;
    * KeySwitch INTTs the input (L passes), lifts each of the ``L``
      decomposed rows into the ``L+1``-prime extended basis with an NTT per
      row-prime pair, multiply-accumulates against both key components, and
      finally rescales both accumulators by the special prime.
    """
    n = poly_degree
    ell = level
    ntt = ntt_pass_basic_ops(n)
    if op in (HeOp.CC_ADD, HeOp.PC_MULT):
        return 2 * ell * n
    if op == HeOp.PC_ADD:
        return ell * n
    if op == HeOp.CC_MULT:
        # c0*d0, c0*d1 + c1*d0, c1*d1 -> 4 products + 1 add, over L rows.
        return 5 * ell * n
    if op == HeOp.RESCALE:
        per_component = (2 * ell - 1) * ntt + 2 * (ell - 1) * n
        return 2 * per_component
    if op == HeOp.KEY_SWITCH:
        ext = ell + 1
        decompose = ell * ntt  # INTT of the switched component
        lift = ell * ext * ntt  # NTT of each lifted row into the extended basis
        mac = 2 * 2 * ell * ext * n  # products + accumulation, both components
        divide = 2 * ((2 * ext - 1) * ntt + 2 * (ext - 1) * n)
        return decompose + lift + mac + divide
    raise ValueError(f"unknown op {op}")


def merge_op_counts(*counts: dict[HeOp, int]) -> dict[HeOp, int]:
    """Sum several op-count dicts."""
    out: dict[HeOp, int] = {}
    for c in counts:
        for op, v in c.items():
            out[op] = out.get(op, 0) + v
    return out
