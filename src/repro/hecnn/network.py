"""End-to-end HE-CNN container: packing, key provisioning, inference, trace.

The deployment model mirrors the paper (Fig. 1 and Sec. IV): the *client*
encodes and encrypts its image into the per-offset convolution ciphertexts
and holds the secret key; the *server* (in the paper, the generated FPGA
accelerator; here, the functional evaluator or the performance model) runs
every layer on ciphertexts — non-interactively, with no decryption of
intermediate results — and returns the encrypted logits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..fhe.ciphertext import Ciphertext
from ..fhe.context import CkksContext
from ..fhe.noise import NoiseBound, NoiseEstimator, publish_noise_budget
from ..fhe.ops import Evaluator, OperationRecorder
from ..obs import lineage, probes
from ..obs.lineage import NoiseAuditError
from ..obs.tracing import trace_span
from .layers import PackedConv, PackedLayer
from .packing import ConvPacking
from .reference import PlainNetwork
from .trace import NetworkTrace


@dataclass
class HeCnn:
    """A packed HE-CNN: an input conv packing plus a sequence of layers.

    Attributes
    ----------
    name:
        Model name (e.g. ``"FxHENN-MNIST"``).
    poly_degree / base_level / prime_bits:
        HE parameters the network is defined against.  The first layer
        enters at ``base_level``; each layer consumes one level.
    input_packing:
        Client-side conv packing for the first layer.
    layers:
        Packed layers in execution order (first must be a
        :class:`~repro.hecnn.layers.PackedConv` using ``input_packing``).
    plain_reference:
        The cleartext oracle computing the identical function.
    """

    name: str
    poly_degree: int
    base_level: int
    input_packing: ConvPacking
    layers: list[PackedLayer]
    plain_reference: PlainNetwork
    prime_bits: int = 30
    output_slots: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if not self.layers or not isinstance(self.layers[0], PackedConv):
            raise ValueError("first layer must be a PackedConv")
        depth = sum(layer.levels_consumed for layer in self.layers)
        if self.base_level < depth + 1:
            raise ValueError(
                f"network consumes {depth} levels; base_level must be >= "
                f"{depth + 1} (got {self.base_level})"
            )
        if self.output_slots is None:
            last = self.layers[-1].output_layout
            self.output_slots = last.slot_index.copy()

    # -- trace ---------------------------------------------------------------------

    def layer_entry_levels(self) -> list[int]:
        """Ciphertext level at each layer's entry.

        Each layer consumes ``levels_consumed`` levels (1 rescale for most,
        2 for dense layers that mask their chunk merge).
        """
        levels = []
        level = self.base_level
        for layer in self.layers:
            levels.append(level)
            level -= layer.levels_consumed
        return levels

    def trace(self) -> NetworkTrace:
        traces = tuple(
            layer.trace(level)
            for layer, level in zip(self.layers, self.layer_entry_levels())
        )
        return NetworkTrace(
            name=self.name,
            layers=traces,
            poly_degree=self.poly_degree,
            base_level=self.base_level,
            prime_bits=self.prime_bits,
        )

    def noise_profile(
        self, context: CkksContext, message_bound: float = 1.0
    ) -> list[tuple[str, NoiseBound]]:
        """Analytic per-layer noise budget for an inference on ``context``.

        Propagates a conservative :class:`~repro.fhe.noise.NoiseBound`
        through every layer (no secret key required) and publishes one
        ``noise_budget_bits`` gauge per layer when observability is
        enabled.  Returns ``[(layer_name, bound_after_layer), ...]``.
        """
        self._check_context(context)
        est = NoiseEstimator.for_context(context)
        bound = est.fresh(message_bound, level=self.base_level)
        profile: list[tuple[str, NoiseBound]] = []
        for layer in self.layers:
            bound = layer.propagate_noise(est, bound)
            publish_noise_budget(bound, layer=layer.name)
            profile.append((layer.name, bound))
        return profile

    # -- key provisioning --------------------------------------------------------------

    def provision_keys(self, context: CkksContext) -> None:
        """Generate exactly the relin/Galois keys the forward pass needs."""
        levels = self.layer_entry_levels()
        relin_levels = sorted(
            {lvl for layer, lvl in zip(self.layers, levels) if _is_square(layer)}
        )
        if relin_levels:
            context.ensure_relin_keys(relin_levels)
        for layer, lvl in zip(self.layers, levels):
            steps = layer.rotation_steps()
            if steps:
                # Replication rotates at the entry level; rotate-and-sum
                # after the weight rescale (one lower); merge rotations
                # after an eventual mask rescale (two lower).
                key_levels = [lvl, lvl - 1]
                if layer.levels_consumed > 1:
                    key_levels.append(lvl - 2)
                context.ensure_galois_keys(steps, levels=key_levels)

    # -- inference ----------------------------------------------------------------------

    def encrypt_input(self, context: CkksContext, image: np.ndarray) -> list[Ciphertext]:
        """Client side: gather, encode and encrypt the per-offset vectors."""
        self._check_context(context)
        vectors = self.input_packing.gather_offsets(image)
        return [
            context.encrypt_values(vec, level=self.base_level) for vec in vectors
        ]

    def forward_encrypted(
        self,
        evaluator: Evaluator,
        cts: list[Ciphertext],
        recorder: OperationRecorder | None = None,
    ) -> list[Ciphertext]:
        """Server side: run every layer on ciphertexts.

        When a :class:`~repro.obs.lineage.LineageTracker` is installed
        (:func:`repro.obs.lineage.lineage_context`), the inputs are
        registered as DAG roots, every op is attributed to its layer, and
        each layer exit marks a noise-waterfall boundary (publishing the
        per-layer ``noise_headroom_bits`` gauge and the threshold watch).
        """
        state = cts
        tracker = lineage.current_tracker()
        with trace_span("inference", category="network", network=self.name):
            if tracker is not None:
                tracker.begin_inputs(cts)
            for layer in self.layers:
                if recorder is not None:
                    recorder.set_phase(layer.name)
                if tracker is not None:
                    tracker.set_layer(layer.name)
                with trace_span(
                    layer.name, category="layer",
                    layer_type=type(layer).__name__,
                ) as span:
                    state = layer.forward(evaluator, state)
                    span.set(output_cts=len(state), level=state[0].level)
                probes.record_layer(
                    layer.name, type(layer).__name__, len(state),
                    state[0].level,
                )
                if tracker is not None:
                    tracker.mark_boundary(layer.name, state)
            if tracker is not None:
                tracker.set_layer(None)
        if recorder is not None:
            recorder.set_phase(None)
        return state

    def infer(
        self,
        context: CkksContext,
        image: np.ndarray,
        recorder: OperationRecorder | None = None,
    ) -> np.ndarray:
        """Full round trip: encrypt, evaluate, decrypt, extract the logits."""
        self._check_context(context)
        evaluator = Evaluator(context, recorder=recorder)
        cts = self.encrypt_input(context, image)
        outputs = self.forward_encrypted(evaluator, cts, recorder)
        layout = self.layers[-1].output_layout
        slot_vectors = [context.decrypt_values(ct) for ct in outputs]
        return layout.extract(slot_vectors)

    def infer_plain(self, image: np.ndarray) -> np.ndarray:
        """The cleartext oracle on the same image."""
        return self.plain_reference.forward(image)

    def audit_noise(
        self,
        context: CkksContext,
        image: np.ndarray,
        message_bound: float = 1.0,
        estimator: NoiseEstimator | None = None,
    ) -> list[dict[str, float | str]]:
        """Debug noise audit: decrypt at every layer boundary and compare
        the measured error against the analytic bound.

        Requires the secret key — a client-side/debugging facility, never
        available to the accelerator.  For each layer the packed output
        is decrypted, its value slots (via the layer's
        :class:`~repro.hecnn.packing.SlotLayout`) are compared against
        the plain reference run to the same depth, and the measured
        precision is checked against the analytic
        :class:`~repro.fhe.noise.NoiseBound`.  The measured-vs-analytic
        gap feeds the ``noise_gap_bits`` histogram; an analytic
        *under-estimate* raises :class:`~repro.obs.lineage
        .NoiseAuditError` — a hard error, since every precision guarantee
        downstream rests on the bound being conservative.

        Returns one row per layer:
        ``{"layer", "analytic_bits", "measured_bits", "gap_bits"}``.
        """
        self._check_context(context)
        est = estimator if estimator is not None else \
            NoiseEstimator.for_context(context)
        evaluator = Evaluator(context)
        state = self.encrypt_input(context, image)
        bound = est.fresh(message_bound, level=self.base_level)
        x = image
        rows: list[dict[str, float | str]] = []
        for layer, plain_layer in zip(self.layers,
                                      self.plain_reference.layers):
            state = layer.forward(evaluator, state)
            bound = layer.propagate_noise(est, bound)
            x = plain_layer.forward(x)
            expected = np.asarray(x, dtype=float).reshape(-1)
            layout = layer.output_layout
            slot_vectors = [context.decrypt_values(ct) for ct in state]
            got = layout.extract(slot_vectors)
            if len(got) != len(expected):
                raise NoiseAuditError(
                    f"layer {layer.name}: layout carries {len(got)} values "
                    f"but the reference produced {len(expected)}"
                )
            err = float(np.max(np.abs(got - expected)))
            measured_bits = float("inf") if err == 0 else -math.log2(err)
            analytic_bits = bound.error_bits
            gap = measured_bits - analytic_bits
            probes.record_noise_gap(gap, layer=layer.name)
            if err > bound.error * (1 + 1e-9):
                worst = getattr(state[0], "lineage_id", None)
                raise NoiseAuditError(
                    f"layer {layer.name}: measured error {err:.3e} exceeds "
                    f"the analytic bound {bound.error:.3e} "
                    f"({measured_bits:.2f} < {analytic_bits:.2f} bits"
                    + (f", lineage {worst}" if worst else "") + ")"
                )
            rows.append({
                "layer": layer.name,
                "analytic_bits": analytic_bits,
                "measured_bits": measured_bits,
                "gap_bits": gap,
            })
        return rows

    def _check_context(self, context: CkksContext) -> None:
        if context.params.poly_degree != self.poly_degree:
            raise ValueError(
                f"context N={context.params.poly_degree} does not match "
                f"network N={self.poly_degree}"
            )
        if context.params.level < self.base_level:
            raise ValueError("context level below network base level")


def _is_square(layer: PackedLayer) -> bool:
    from .layers import PackedSquare

    return isinstance(layer, PackedSquare)
