"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the framework's workflow:

* ``devices`` — list the built-in FPGA targets;
* ``trace``   — print a network's HE operation trace;
* ``generate``— run the DSE and emit the accelerator design (optionally
  saving JSON and HLS directives);
* ``explore`` — print the Pareto frontier over a BRAM budget window;
* ``infer``   — run a real encrypted inference and verify it against the
  plaintext reference;
* ``profile`` — run an encrypted inference under the observability layer
  and print per-layer / per-op latency, noise-budget and noise-headroom
  breakdowns, optionally exporting a Chrome-trace / Perfetto JSON;
* ``explain`` — reconstruct a request's ciphertext lineage DAG (per-op
  noise accounting) with a per-layer noise waterfall, the dominant noise
  spenders, and JSON / Graphviz DOT exports;
* ``costs``   — replay a zipf multi-tenant serving session under a
  :class:`~repro.serve.costs.CostLedger` and print who consumed what
  (slot time, wire bytes, keygen, DSE, node-seconds, energy) with the
  exact reconciliation verdict.

Unknown networks and devices exit with a message and a nonzero status —
never a raw traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .analysis import format_table
from .core import FxHennFramework, design_to_json, pareto_frontier, solution_scatter
from .fpga import acu9eg, acu15eg, device_by_name
from .hecnn import fxhenn_cifar10_model, fxhenn_mnist_model, tiny_mnist_model

_NETWORKS = {
    "mnist": fxhenn_mnist_model,
    "cifar10": fxhenn_cifar10_model,
    "tiny": tiny_mnist_model,
}


def _network(name: str):
    try:
        return _NETWORKS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown network {name!r}; choose from {sorted(_NETWORKS)}"
        ) from None


def _device(name: str):
    try:
        return device_by_name(name)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _select_kernel_backend(name: str | None) -> None:
    """Activate ``--kernel-backend`` before any FHE work happens.

    Layered on top of the ``REPRO_KERNEL_BACKEND`` environment variable
    (the explicit CLI selection wins); an unknown name exits with the
    available catalog instead of a traceback.
    """
    if not name:
        return
    from .fhe import kernels

    try:
        kernels.set_backend(name)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None


def cmd_devices(_args: argparse.Namespace) -> int:
    rows = [
        (d.name, d.dsp_slices, d.bram_blocks, d.uram_blocks, d.tdp_watts,
         d.clock_mhz)
        for d in (acu9eg(), acu15eg())
    ]
    print(format_table(
        ["device", "DSP", "BRAM36K", "URAM", "TDP W", "clock MHz"], rows,
        title="built-in FPGA targets",
    ))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    trace = _network(args.network).trace()
    rows = [
        (lt.name, lt.kind, lt.level, lt.hop_count, lt.keyswitch_count,
         lt.macs, lt.plaintext_count)
        for lt in trace.layers
    ]
    rows.append(
        ("TOTAL", "", "", trace.hop_count, trace.keyswitch_count,
         trace.macs, sum(lt.plaintext_count for lt in trace.layers))
    )
    print(format_table(
        ["layer", "kind", "level", "HOPs", "KeySwitch", "MACs", "plaintexts"],
        rows, title=f"{trace.name} (N={trace.poly_degree}, "
                    f"L={trace.base_level})",
    ))
    print(f"model size: {trace.model_size_bytes() / 1e6:.2f} MB; "
          f"HE-MACs: {trace.he_macs():.3e}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    model = _network(args.network)
    device = _device(args.device)
    design = FxHennFramework().generate(model, device)
    util = design.utilization()
    print(f"{design.network.name} on {device.name}:")
    print(f"  latency:   {design.latency_seconds:.4f} s "
          f"({design.solution.latency_cycles} cycles)")
    print(f"  energy:    {design.energy_joules:.3f} J/inference")
    print(f"  DSP:       {util['dsp']:.1%}")
    print(f"  BRAM peak: {util['bram_peak']:.1%} "
          f"(aggregate {util['bram_aggregate']:.1%})")
    print(f"  DSE:       {design.dse.feasible}/{design.dse.evaluated} "
          f"feasible points")
    print(f"  point:     nc_NTT={design.solution.point.nc_ntt} "
          f"{design.solution.point.describe()}")
    if args.json:
        Path(args.json).write_text(design_to_json(design))
        print(f"  design record written to {args.json}")
    if args.directives:
        Path(args.directives).write_text(design.hls_directives())
        print(f"  HLS directives written to {args.directives}")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    trace = _network(args.network).trace()
    device = _device(args.device)
    points = solution_scatter(
        trace, device, bram_min=args.bram_min, bram_max=args.bram_max
    )
    frontier = pareto_frontier(points)
    rows = [
        (p.bram_blocks, f"{p.latency_seconds:.4f}",
         p.solution.point.nc_ntt,
         str(p.solution.point.describe()["KeySwitch"]))
        for p in frontier
    ]
    print(format_table(
        ["BRAM blocks", "latency s", "nc_NTT", "KeySwitch"],
        rows,
        title=f"Pareto frontier: {trace.name} on {device.name} "
              f"({len(points)} feasible points)",
    ))
    return 0


def _inference_setup(network: str, seed: int, full: bool, command: str):
    """``(params, model, image)`` for the encrypted-inference commands.

    ``tiny`` is the N=512 test network; ``mnist`` defaults to the reduced
    N=2048 parameters unless ``full`` asks for the paper's.
    """
    from .fhe import CkksParameters
    from .hecnn import synthetic_mnist_image

    if network == "tiny":
        from .fhe import tiny_test_params

        params = tiny_test_params(poly_degree=512, level=7)
        model = tiny_mnist_model(seed=0, params=params)
        image = np.random.default_rng(seed).uniform(0, 1, (1, 8, 8))
    elif network == "mnist":
        if full:
            from .fhe import fxhenn_mnist_params

            params = fxhenn_mnist_params()
        else:
            params = CkksParameters(
                poly_degree=2048, prime_bits=28, level=7, scale_bits=26
            )
        model = fxhenn_mnist_model(seed=0, params=params)
        image = synthetic_mnist_image(seed=seed)
    else:
        raise SystemExit(
            f"{command} supports networks: tiny, mnist (got {network!r})"
        )
    return params, model, image


def cmd_infer(args: argparse.Namespace) -> int:
    from .fhe import CkksContext

    _select_kernel_backend(args.kernel_backend)
    params, model, image = _inference_setup(
        args.network, args.seed, full=not args.fast, command="infer",
    )
    context = CkksContext(params, seed=1)
    model.provision_keys(context)
    encrypted = model.infer(context, image)
    plain = model.infer_plain(image)
    err = float(np.max(np.abs(encrypted - plain)))
    print(f"{model.name}: {len(plain)} logits, max CKKS error {err:.2e}")
    agree = int(np.argmax(encrypted)) == int(np.argmax(plain))
    print(f"argmax agreement: {'OK' if agree else 'MISMATCH'}")
    return 0 if agree else 1


def _write_or_fail(path: str, text: str, what: str) -> bool:
    """Write ``text`` to ``path``; on failure complain and return False.

    An unwritable output path must surface as a nonzero exit, not a
    traceback: a CI job asking for a trace artifact and silently getting
    none is worse than a failed job.
    """
    try:
        Path(path).write_text(text)
    except OSError as exc:
        print(f"error: cannot write {what} to {path!r}: {exc}",
              file=sys.stderr)
        return False
    return True


def _load_profile(path: str) -> dict:
    """Load one ``repro profile --format json`` record, or exit."""
    import json

    try:
        data = json.loads(Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read profile {path!r}: {exc}") from None
    except ValueError as exc:
        raise SystemExit(f"{path!r} is not valid JSON: {exc}") from None
    if not isinstance(data, dict) or "layers" not in data or "ops" not in data:
        raise SystemExit(
            f"{path!r} is not a 'repro profile --format json' record "
            f"(missing 'layers'/'ops')"
        )
    return data


def _diff_flags(
    wall_old: float, wall_new: float, head_old: float | None,
    head_new: float | None, tolerance: float,
) -> list[str]:
    """Regression flags for one profile row.

    A row regresses when it got *slower* by more than ``tolerance``
    (relative) or *noisier* by more than half a bit of headroom —
    absolute, because headroom near zero is exactly where relative
    comparison degenerates.
    """
    flags = []
    if wall_old > 0 and wall_new > wall_old * (1.0 + tolerance):
        flags.append("slower")
    if head_old is not None and head_new is not None \
            and head_new < head_old - 0.5:
        flags.append("noisier")
    return flags


def _profile_diff(args: argparse.Namespace) -> int:
    """Compare two ``repro profile --format json`` records."""
    import json

    old_path, new_path = args.diff
    old, new = _load_profile(old_path), _load_profile(new_path)
    tol = args.diff_tolerance

    old_layers = {r["name"]: r for r in old["layers"]}
    new_layers = {r["name"]: r for r in new["layers"]}
    names = [r["name"] for r in new["layers"]]
    names += [n for n in old_layers if n not in new_layers]
    layer_rows = []
    for name in names:
        o, n = old_layers.get(name), new_layers.get(name)
        if o is None or n is None:
            layer_rows.append({
                "name": name, "status": "added" if o is None else "removed",
                "wall_ms_old": o["wall_ms"] if o else None,
                "wall_ms_new": n["wall_ms"] if n else None,
                "wall_ms_delta": None, "headroom_old": None,
                "headroom_new": None, "headroom_delta": None, "flags": [],
            })
            continue
        flags = _diff_flags(o["wall_ms"], n["wall_ms"],
                            o.get("headroom_bits"), n.get("headroom_bits"),
                            tol)
        layer_rows.append({
            "name": name, "status": "common",
            "wall_ms_old": o["wall_ms"], "wall_ms_new": n["wall_ms"],
            "wall_ms_delta": n["wall_ms"] - o["wall_ms"],
            "headroom_old": o.get("headroom_bits"),
            "headroom_new": n.get("headroom_bits"),
            "headroom_delta": (
                n["headroom_bits"] - o["headroom_bits"]
                if "headroom_bits" in o and "headroom_bits" in n else None
            ),
            "flags": flags,
        })

    old_ops = {r["op"]: r for r in old["ops"]}
    new_ops = {r["op"]: r for r in new["ops"]}
    op_names = [r["op"] for r in new["ops"]]
    op_names += [o for o in old_ops if o not in new_ops]
    op_rows = []
    for op in op_names:
        o, n = old_ops.get(op), new_ops.get(op)
        if o is None or n is None:
            op_rows.append({
                "op": op, "status": "added" if o is None else "removed",
                "total_ms_old": o["total_ms"] if o else None,
                "total_ms_new": n["total_ms"] if n else None,
                "total_ms_delta": None, "p95_ms_old": None,
                "p95_ms_new": None, "flags": [],
            })
            continue
        flags = _diff_flags(o["total_ms"], n["total_ms"], None, None, tol)
        op_rows.append({
            "op": op, "status": "common",
            "total_ms_old": o["total_ms"], "total_ms_new": n["total_ms"],
            "total_ms_delta": n["total_ms"] - o["total_ms"],
            "p95_ms_old": o["p95_ms"], "p95_ms_new": n["p95_ms"],
            "flags": flags,
        })

    regressions = [r["name"] for r in layer_rows if r["flags"]] \
        + [r["op"] for r in op_rows if r["flags"]]

    if args.format == "json":
        print(json.dumps({
            "old": old_path, "new": new_path,
            "old_network": old.get("network"),
            "new_network": new.get("network"),
            "old_kernel_backend": old.get("kernel_backend"),
            "new_kernel_backend": new.get("kernel_backend"),
            "wall_s_old": old.get("wall_s"), "wall_s_new": new.get("wall_s"),
            "tolerance": tol,
            "layers": layer_rows,
            "ops": op_rows,
            "regressions": regressions,
        }, indent=2))
        return 0

    def _num(v, fmt="{:.1f}"):
        return "-" if v is None else fmt.format(v)

    def _mark(row):
        if row["status"] != "common":
            return row["status"].upper()
        return ",".join(row["flags"]) if row["flags"] else ""

    print(format_table(
        ["layer", "wall ms old", "wall ms new", "delta ms", "headroom old",
         "headroom new", "delta bits", "flag"],
        [(r["name"], _num(r["wall_ms_old"]), _num(r["wall_ms_new"]),
          _num(r["wall_ms_delta"], "{:+.1f}"),
          _num(r["headroom_old"]), _num(r["headroom_new"]),
          _num(r["headroom_delta"], "{:+.1f}"), _mark(r))
         for r in layer_rows],
        title=f"profile diff: {old_path} -> {new_path} "
              f"(tolerance {tol:.0%})",
    ))
    print()
    print(format_table(
        ["op", "total ms old", "total ms new", "delta ms", "p95 ms old",
         "p95 ms new", "flag"],
        [(r["op"], _num(r["total_ms_old"]), _num(r["total_ms_new"]),
          _num(r["total_ms_delta"], "{:+.1f}"),
          _num(r["p95_ms_old"], "{:.2f}"), _num(r["p95_ms_new"], "{:.2f}"),
          _mark(r))
         for r in op_rows],
        title="per-op latency diff",
    ))
    if old.get("wall_s") is not None and new.get("wall_s") is not None:
        print(f"\nend-to-end wall: {old['wall_s']:.2f} s -> "
              f"{new['wall_s']:.2f} s")
    if regressions:
        print(f"{len(regressions)} regression(s) past tolerance "
              f"{tol:.0%}: {', '.join(regressions)}")
    else:
        print(f"no regressions past tolerance {tol:.0%}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Encrypted inference under the observability layer (``repro.obs``).

    Prints (a) a per-layer wall-time / op-count / noise-budget table and
    (b) a per-op latency histogram (count, p50, p95) — the software twin
    of the paper's Fig. 7 layer breakdown.  ``--format json`` emits the
    same tables as one machine-readable object instead.  Optionally
    exports the span tree as Chrome-trace JSON loadable in
    chrome://tracing or https://ui.perfetto.dev; an unwritable trace
    path exits nonzero.

    ``--diff OLD.json NEW.json`` instead compares two previously saved
    ``--format json`` records (no inference runs): per-layer wall-time
    and noise-headroom deltas plus per-op latency deltas, flagging rows
    that got slower past the tolerance or lost headroom.
    """
    import json
    import time

    if args.diff:
        return _profile_diff(args)

    from . import obs
    from .fhe import CkksContext, kernels
    from .fhe.ops import OperationRecorder

    _select_kernel_backend(args.kernel_backend)
    backend_name = kernels.active_backend().name
    params, model, image = _inference_setup(
        args.network, args.seed, full=args.full, command="profile",
    )
    context = CkksContext(params, seed=1)
    model.provision_keys(context)
    recorder = OperationRecorder()
    with obs.observed():
        obs.reset()
        start = time.perf_counter()
        encrypted = model.infer(context, image, recorder=recorder)
        wall = time.perf_counter() - start
        noise_rows = model.noise_profile(context)
    plain = model.infer_plain(image)
    err = float(np.max(np.abs(encrypted - plain)))

    tracer = obs.get_tracer()
    layer_stats = {r["name"]: r for r in tracer.summary(category="layer")}
    layer_rows = []
    for (name, bound), layer in zip(noise_rows, model.layers):
        stats = layer_stats.get(name, {})
        op_count = sum(recorder.by_phase.get(name, {}).values())
        layer_rows.append({
            "name": name,
            "kind": type(layer).__name__.removeprefix("Packed"),
            "wall_ms": stats.get("total_ms", 0.0),
            "he_ops": op_count,
            "level_out": bound.level,
            "noise_bits": bound.error_bits,
            "headroom_bits": bound.error_bits - args.headroom_floor_bits,
        })
    op_rows = [
        {"op": r["name"], "count": r["count"], "total_ms": r["total_ms"],
         "p50_ms": r["p50_ms"], "p95_ms": r["p95_ms"]}
        for r in tracer.summary(category="he_op")
    ]

    if args.format == "json":
        payload = {
            "network": model.name,
            "poly_degree": params.poly_degree,
            "kernel_backend": backend_name,
            "wall_s": wall,
            "max_ckks_error": err,
            "headroom_floor_bits": args.headroom_floor_bits,
            "layers": layer_rows,
            "ops": op_rows,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["layer", "kind", "wall ms", "HE ops", "level out", "noise bits",
             "headroom"],
            [(r["name"], r["kind"], f"{r['wall_ms']:.1f}", r["he_ops"],
              r["level_out"], f"{r['noise_bits']:.1f}",
              f"{r['headroom_bits']:+.1f}")
             for r in layer_rows],
            title=f"{model.name} encrypted inference profile "
                  f"(N={params.poly_degree}, kernels={backend_name}, "
                  f"wall {wall:.2f} s, headroom floor "
                  f"{args.headroom_floor_bits:g} bits)",
        ))
        print()
        print(format_table(
            ["op", "count", "total ms", "p50 ms", "p95 ms"],
            [(r["op"], r["count"], f"{r['total_ms']:.1f}",
              f"{r['p50_ms']:.2f}", f"{r['p95_ms']:.2f}")
             for r in op_rows],
            title="per-op latency breakdown",
        ))
        print(f"\nmax CKKS error vs plaintext reference: {err:.2e}")
    if args.trace_out:
        try:
            tracer.export_chrome_trace(args.trace_out)
        except OSError as exc:
            print(f"error: cannot write Chrome trace to "
                  f"{args.trace_out!r}: {exc}", file=sys.stderr)
            return 1
        if args.format != "json":
            print(f"Chrome trace written to {args.trace_out} "
                  f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _fmt_bits(bits: float | None) -> str:
    return "-" if bits is None else f"{bits:.2f}"


def cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct an encrypted inference's ciphertext lineage DAG.

    Runs one inference with a :class:`~repro.obs.lineage.LineageTracker`
    installed, then reports where the noise budget went: the per-layer
    noise waterfall (entry/exit/spent analytic bits at every layer
    boundary), the dominant per-op noise spenders, and the DAG's shape.
    ``--json-out`` / ``--dot`` export the full per-op record for offline
    tooling (the DOT file renders with Graphviz); ``--audit`` addition-
    ally decrypts at every layer boundary (client-side debug — needs the
    secret key) and cross-checks measured noise against the analytic
    bounds, failing hard on any under-estimate.
    """
    import json

    from . import obs
    from .fhe import CkksContext, kernels
    from .fhe.noise import NoiseEstimator

    _select_kernel_backend(args.kernel_backend)
    backend_name = kernels.active_backend().name
    params, model, image = _inference_setup(
        args.network, args.seed, full=args.full, command="explain",
    )
    context = CkksContext(params, seed=1)
    model.provision_keys(context)
    trace_id = obs.new_trace_id("explain")
    tracker = obs.LineageTracker(
        estimator=NoiseEstimator.for_context(context),
        trace_id=trace_id,
        headroom_threshold_bits=args.headroom_bits,
    )
    with obs.observed():
        obs.reset()
        with obs.trace_context(trace_id), obs.lineage_context(tracker):
            model.infer(context, image)
        audit_rows = model.audit_noise(context, image) if args.audit else None

    record = tracker.to_json()
    record["network"] = model.name
    record["poly_degree"] = params.poly_degree
    record["kernel_backend"] = backend_name
    if audit_rows is not None:
        record["audit"] = audit_rows

    ok = True
    if args.json_out:
        ok &= _write_or_fail(
            args.json_out, json.dumps(record, indent=2) + "\n",
            "lineage JSON",
        )
    if args.dot:
        ok &= _write_or_fail(args.dot, tracker.to_dot(), "lineage DOT")

    if args.format == "json":
        print(json.dumps(record, indent=2))
        return 0 if ok else 1

    print(format_table(
        ["layer", "entry bits", "exit bits", "spent bits", "worst ct"],
        [(r["layer"], _fmt_bits(r["entry_bits"]), _fmt_bits(r["exit_bits"]),
          _fmt_bits(r["spent_bits"]), r["worst_lineage_id"] or "-")
         for r in tracker.waterfall()],
        title=f"{model.name} noise waterfall (trace {trace_id}, "
              f"N={params.poly_degree}, kernels={backend_name})",
    ))
    print()
    print(format_table(
        ["ciphertext", "op", "layer", "spent bits", "exit bits"],
        [(n["lineage_id"], n["op"], n["layer"] or "-",
          _fmt_bits(n["spent_bits"]), _fmt_bits(n["exit_bits"]))
         for n in tracker.dominant_spenders(args.top)],
        title=f"top {args.top} noise spenders",
    ))
    edges = tracker.edges()
    print(f"\nDAG: {len(tracker.nodes)} ciphertexts, {len(edges)} edges, "
          f"{len(tracker.roots())} inputs; connected: "
          f"{tracker.is_connected()}")
    initial, final = tracker.initial_bits, tracker.final_bits
    if initial is not None and final is not None:
        print(f"analytic precision: {initial:.2f} -> {final:.2f} bits "
              f"(spent {initial - final:.2f})")
    print(f"headroom threshold {args.headroom_bits:g} bits: "
          f"{tracker.headroom_crossings} crossing(s)")
    if audit_rows is not None:
        print()
        print(format_table(
            ["layer", "analytic bits", "measured bits", "gap bits"],
            [(r["layer"], f"{r['analytic_bits']:.2f}",
              f"{r['measured_bits']:.2f}", f"{r['gap_bits']:+.2f}")
             for r in audit_rows],
            title="noise audit (measured vs analytic, decrypted "
                  "boundaries)",
        ))
        print("audit OK: measured noise never exceeded the analytic bound")
    if args.json_out:
        print(f"lineage record written to {args.json_out}")
    if args.dot:
        print(f"lineage DAG written to {args.dot} "
              f"(render: dot -Tsvg {args.dot})")
    return 0 if ok else 1


def _alert_engine(rules_path: str):
    """Build an :class:`~repro.obs.alerts.AlertEngine` from a RULES.json
    file, or exit with the parse/validation error."""
    from .obs.alerts import AlertEngine, load_rules

    try:
        rules = load_rules(rules_path)
    except OSError as exc:
        raise SystemExit(
            f"cannot read alert rules {rules_path!r}: {exc}"
        ) from None
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(
            f"bad alert rules in {rules_path!r}: {exc}"
        ) from None
    return AlertEngine(rules)


def _print_alert_summary(engine) -> None:
    counts = engine.counts()
    active = set(engine.active())
    for rule in engine.rules:
        c = counts[rule.name]
        state = "ACTIVE" if rule.name in active else "ok"
        print(f"alert {rule.name} [{rule.kind}]: "
              f"fired {c['fired']}, resolved {c['resolved']} [{state}]")


def cmd_serve(args: argparse.Namespace) -> int:
    """Simulate a slot-batched serving session and print the outcome."""
    _select_kernel_backend(args.kernel_backend)
    from . import obs
    from .serve import (
        SchedulerConfig,
        ServingCostModel,
        SlotBatchScheduler,
        default_slos,
        evaluate_report,
    )
    from .serve.tenants import TenantRegistry
    from .serve.traffic import poisson_arrivals, zipf_tenant_arrivals

    device = _device(args.device)
    cost_model = ServingCostModel.cryptonets_mnist(device)
    engine = _alert_engine(args.alerts) if args.alerts else None
    scheduler = SlotBatchScheduler(
        cost_model,
        SchedulerConfig(
            batch_window_s=args.window,
            max_lanes=args.max_lanes,
            queue_capacity=args.queue_capacity,
        ),
        alerts=engine,
    )
    registry = None
    if args.tenants is not None:
        if args.tenants < 1:
            raise SystemExit("--tenants must be >= 1")
        registry = TenantRegistry()
        requests = zipf_tenant_arrivals(
            args.requests, args.rate, tenant_count=args.tenants,
            s=args.zipf_s, seed=args.seed, deadline_s=args.deadline,
            registry=registry,
        )
    else:
        requests = poisson_arrivals(
            args.requests, args.rate, seed=args.seed,
            deadline_s=args.deadline,
        )
    with obs.observed():
        obs.reset()
        report = scheduler.run(requests)
        slo_statuses = evaluate_report(
            report, default_slos(p99_latency_s=args.slo_p99)
        )
        openmetrics = obs.render_openmetrics() if args.openmetrics_out else ""
    latency = report.latency_percentiles()
    batch_rows = [
        (b.batch_id, b.mode, b.lanes, f"{b.fill_ratio:.3f}",
         f"{b.start_s:.3f}", f"{b.finish_s:.3f}")
        for b in report.batches
    ]
    print(format_table(
        ["batch", "mode", "lanes", "fill", "start s", "finish s"],
        batch_rows,
        title=f"slot-batched serving on {device.name} "
              f"(window={args.window}s, {args.requests} requests "
              f"@ {args.rate:.0f}/s)",
    ))
    print(f"completed: {report.completed}  rejected: {report.rejected}  "
          f"expired: {report.expired}")
    print(f"throughput: {report.throughput_images_per_s:.1f} img/s "
          f"amortized over {report.makespan_s:.2f} s")
    if registry is not None:
        per_group = report.per_key_group()
        print()
        print(format_table(
            ["key group", "tier", "requests", "done", "p50 s", "p99 s"],
            [(group, registry.get(
                  group.rsplit(":k", 1)[0]).tier,
              row["requests"], row["completed"],
              f"{row['latency_p50_s']:.2f}", f"{row['latency_p99_s']:.2f}")
             for group, row in sorted(per_group.items())],
            title=f"{len(per_group)} tenant key groups "
                  f"(zipf s={args.zipf_s:g})",
        ))
        print(f"cross-tenant isolation: "
              f"{'OK' if report.isolation_ok() else 'VIOLATED'} "
              f"(no batch mixes key groups)")
    print(f"latency: p50 {latency['p50']:.2f} s, p95 {latency['p95']:.2f} s, "
          f"p99 {latency['p99']:.2f} s")
    single = cost_model.single_request_seconds()
    if report.throughput_images_per_s > 0:
        print(f"vs single-request LoLa ({1 / single:.1f} img/s): "
              f"{report.throughput_images_per_s * single:.1f}x amortized")
    for status in slo_statuses:
        print(f"SLO {status.slo.name}: {status.value:.4f} "
              f"{'<=' if status.ok else '>'} {status.slo.threshold} "
              f"[{'OK' if status.ok else 'VIOLATED'}]")
    if engine is not None:
        _print_alert_summary(engine)
    ok = True
    if args.trace_out:
        try:
            obs.get_tracer().export_chrome_trace(args.trace_out)
            print(f"Chrome trace written to {args.trace_out}")
        except OSError as exc:
            print(f"error: cannot write Chrome trace to "
                  f"{args.trace_out!r}: {exc}", file=sys.stderr)
            ok = False
    if args.openmetrics_out:
        obs.validate_openmetrics(openmetrics)
        if _write_or_fail(args.openmetrics_out, openmetrics,
                          "OpenMetrics snapshot"):
            print(f"OpenMetrics snapshot written to {args.openmetrics_out}")
        else:
            ok = False
    if args.slo_strict and not all(s.ok for s in slo_statuses):
        return 1
    return 0 if ok else 1


def cmd_costs(args: argparse.Namespace) -> int:
    """Per-tenant cost attribution for a simulated serving session.

    Replays zipf multi-tenant traffic through the slot-batch scheduler
    with a :class:`~repro.serve.costs.CostLedger` installed, provisioning
    per-tenant CKKS contexts through the tenant-sharded cache (a cache
    miss charges keygen to that tenant; warm tenants amortize to zero)
    and charging the cost model's DSE scan to the shared pool.  Fleet
    costs settle onto tenants by slot-time share: node-seconds from the
    session makespan, energy from accelerator-busy time at the device's
    TDP.  The exact per-tenant == fleet reconciliation verdict decides
    the exit status, so this command doubles as a CI smoke check.
    """
    import json

    from . import obs
    from .obs.registry import REGISTRY
    from .serve import (
        CostLedger,
        SchedulerConfig,
        ServingCostModel,
        SlotBatchScheduler,
        TenantShardedCache,
    )
    from .serve.tenants import TenantRegistry
    from .serve.traffic import zipf_tenant_arrivals

    device = _device(args.device)
    if args.tenants < 1:
        raise SystemExit("--tenants must be >= 1")
    engine = _alert_engine(args.alerts) if args.alerts else None
    ledger = CostLedger()
    with obs.observed():
        obs.reset()
        before = REGISTRY.counter("dse_points_scanned").value
        cost_model = ServingCostModel.cryptonets_mnist(device)
        # Designs resolve lazily: price both modes now so the DSE runs
        # inside the measured window.  The scan serves every tenant, so
        # it charges the shared pool, distributed like fleet costs.
        cost_model.single_request_seconds()
        cost_model.batch_seconds()
        ledger.note_dse(
            int(REGISTRY.counter("dse_points_scanned").value - before)
        )
        scheduler = SlotBatchScheduler(
            cost_model,
            SchedulerConfig(
                batch_window_s=args.window,
                max_lanes=args.max_lanes,
                queue_capacity=args.queue_capacity,
            ),
            ledger=ledger,
            alerts=engine,
        )
        registry = TenantRegistry()
        requests = zipf_tenant_arrivals(
            args.requests, args.rate, tenant_count=args.tenants,
            s=args.zipf_s, seed=args.seed, deadline_s=args.deadline,
            registry=registry,
        )
        contexts = TenantShardedCache("context")
        for req in requests:
            contexts.get_or_create(
                req.key_group, "context",
                ledger.keygen_factory(req.key_group, object),
            )
        report = scheduler.run(requests)
        busy_s = sum(b.finish_s - b.start_s for b in report.batches)
        ledger.settle(
            node_seconds=report.makespan_s,
            energy_joules=busy_s * device.tdp_watts,
        )
        ledger.publish()
        costs = ledger.report()

    reconciliation = costs.reconciliation()
    if args.format == "json":
        payload = {
            "device": device.name,
            "requests": args.requests,
            "tenant_count": args.tenants,
            "zipf_s": args.zipf_s,
            "window_s": args.window,
            "seed": args.seed,
            "makespan_s": report.makespan_s,
            "completed": report.completed,
            "rejected": report.rejected,
            "expired": report.expired,
            "throughput_images_per_s": report.throughput_images_per_s,
            "costs": costs.as_dict(),
            "alerts": engine.summary() if engine is not None else None,
        }
        print(json.dumps(payload, indent=2))
        return 0 if costs.reconciled else 1

    totals = costs.totals()
    rows = [
        (r.tenant, r.requests, f"{r.slot_us / 1e6:.3f}", r.wire_bytes,
         r.keygen_count, r.dse_points, f"{r.node_us / 1e6:.3f}",
         f"{r.energy_uj / 1e6:.3f}",
         f"{costs.share(r.tenant, 'node_seconds'):.1%}")
        for r in sorted(costs.tenants, key=lambda r: -r.node_us)
    ]
    print(format_table(
        ["tenant", "reqs", "slot s", "wire B", "keygen", "DSE", "node s",
         "energy J", "node share"],
        rows,
        title=f"per-tenant costs on {device.name} "
              f"({args.requests} requests, {args.tenants} tenants, "
              f"zipf s={args.zipf_s:g})",
    ))
    print(f"fleet totals: {totals['requests']:.0f} requests, "
          f"{totals['slot_seconds']:.3f} slot-s, "
          f"{totals['wire_bytes']:.0f} wire B, "
          f"{totals['keygen_count']:.0f} keygens, "
          f"{totals['dse_points']:.0f} DSE points, "
          f"{totals['node_seconds']:.3f} node-s, "
          f"{totals['energy_joules']:.3f} J")
    failed = sorted(k for k, ok in reconciliation.items() if not ok)
    print(f"reconciliation: "
          f"{'EXACT' if costs.reconciled else 'LEAKED'} "
          f"({sum(reconciliation.values())}/{len(reconciliation)} axes"
          + (f"; leaking: {', '.join(failed)}" if failed else "")
          + ")")
    print(f"top tenant node-second share: "
          f"{costs.top_share('node_seconds'):.1%}")
    if engine is not None:
        _print_alert_summary(engine)
    return 0 if costs.reconciled else 1


def cmd_bench_throughput(args: argparse.Namespace) -> int:
    """Sweep batch windows; print the latency-vs-throughput curve."""
    import json

    from .serve.bench import throughput_sweep

    device = _device(args.device)
    try:
        windows = sorted({float(w) for w in args.windows.split(",") if w})
    except ValueError:
        raise SystemExit(
            f"--windows must be comma-separated seconds, got "
            f"{args.windows!r}"
        ) from None
    if not windows:
        raise SystemExit("--windows must name at least one window")
    payload = throughput_sweep(
        device, windows=windows, request_count=args.requests,
        rate_per_s=args.rate, seed=args.seed, max_lanes=args.max_lanes,
    )
    rows = [
        (row["batch_window_s"], row["batches"],
         f"{row['mean_fill_ratio']:.3f}",
         f"{row['throughput_images_per_s']:.1f}",
         f"{row['latency_p50_s']:.2f}", f"{row['latency_p95_s']:.2f}")
        for row in payload["curve"]
    ]
    baseline = payload["baseline"]["throughput_images_per_s"]
    print(format_table(
        ["window s", "batches", "fill", "img/s", "p50 s", "p95 s"],
        rows,
        title=f"throughput sweep on {device.name} "
              f"(LoLa baseline {baseline:.1f} img/s)",
    ))
    print(f"best window: {payload['best_window_s']} s -> "
          f"{payload['amortized_speedup']:.1f}x amortized speedup "
          f"over single-request LoLa")
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"curve written to {args.json}")
    return 0


def _fleet_from_spec(
    spec: str, bandwidth_gbps: float, link_latency_us: float
):
    from .cluster import Fleet, Link

    names = [n.strip() for n in spec.split(",") if n.strip()]
    if not names:
        raise SystemExit(
            f"fleet spec must name at least one device, got {spec!r}"
        )
    link = Link(
        bandwidth_gbps=bandwidth_gbps, latency_s=link_latency_us * 1e-6
    )
    try:
        return Fleet.from_names(names, link=link)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def cmd_cluster(args: argparse.Namespace) -> int:
    """Dispatch ``repro cluster <subcommand>``."""
    if args.cluster_command == "plan":
        return cmd_cluster_plan(args)
    raise SystemExit(f"unknown cluster command {args.cluster_command!r}")


def cmd_cluster_plan(args: argparse.Namespace) -> int:
    """Plan a pipeline across a fleet; ``--repeat`` proves the cache."""
    import json

    from . import obs
    from .cluster import PARTITION_METHODS, FleetPlanner, best_single_device
    from .obs.registry import REGISTRY

    if args.method not in PARTITION_METHODS:
        raise SystemExit(
            f"unknown method {args.method!r}; "
            f"choose from {PARTITION_METHODS}"
        )
    trace = _network(args.network).trace()
    fleet = _fleet_from_spec(
        args.fleet, args.bandwidth_gbps, args.link_latency_us
    )
    planner = FleetPlanner()
    with obs.observed():
        obs.reset()
        plan = None
        for rerun in range(max(1, args.repeat)):
            before = REGISTRY.counter("dse_points_scanned").value
            plan = planner.plan(trace, fleet, method=args.method)
            scanned = REGISTRY.counter("dse_points_scanned").value - before
            print(f"pass {rerun + 1}: {scanned} design points scanned"
                  + (" (warm cache)" if scanned == 0 else ""))
        baseline = best_single_device(
            trace, list(fleet.devices), designs=planner.designs
        )

    rows = [
        (s.index, s.device.name, ",".join(s.layer_names),
         f"{s.compute_seconds:.5f}",
         s.transfer_bytes, f"{s.transfer_seconds:.5f}",
         f"{util:.1%}")
        for s, util in zip(plan.stages, plan.utilization())
    ]
    print(format_table(
        ["stage", "device", "layers", "compute s", "xfer B", "xfer s",
         "util"],
        rows,
        title=f"{trace.name} on {fleet.name} ({plan.method} split)",
    ))
    print(f"bottleneck interval: {plan.bottleneck_seconds:.5f} s -> "
          f"{plan.steady_state_throughput:.2f} inf/s steady-state")
    print(f"fill latency: {plan.fill_latency_seconds:.5f} s; "
          f"energy {plan.energy_per_inference_joules:.3f} J/inference")
    single_tp = 1.0 / baseline.latency_seconds
    print(f"best single device ({baseline.device.name}): "
          f"{baseline.latency_seconds:.5f} s -> {single_tp:.2f} inf/s; "
          f"pipeline speedup "
          f"{plan.steady_state_throughput / single_tp:.2f}x")
    if args.json:
        Path(args.json).write_text(
            json.dumps(plan.as_dict(), indent=2) + "\n"
        )
        print(f"plan written to {args.json}")
    return 0


def cmd_bench_cluster(args: argparse.Namespace) -> int:
    """Run the fleet benchmark; exit nonzero if an invariant fails."""
    import json

    from .cluster import Link, default_fleets, run_cluster_bench

    trace = _network(args.network).trace()
    if args.fleet:
        fleets = [
            _fleet_from_spec(
                spec, args.bandwidth_gbps, args.link_latency_us
            )
            for spec in args.fleet
        ]
    else:
        fleets = default_fleets(Link(
            bandwidth_gbps=args.bandwidth_gbps,
            latency_s=args.link_latency_us * 1e-6,
        ))
    payload = run_cluster_bench(trace, fleets=fleets, num_items=args.items)

    rows = []
    for row in payload["fleets"]:
        splits = row["splits"]
        rows.append((
            row["fleet"]["name"],
            f"{splits['dp']['bottleneck_seconds']:.5f}",
            f"{splits['equal']['bottleneck_seconds']:.5f}",
            f"{row['plan']['steady_state_throughput']:.2f}",
            f"{row['throughput_speedup_vs_single']:.2f}x",
            f"{row['energy_per_inference_joules']:.3f}",
            "OK" if row["sim"]["matches_analytic"] else "MISMATCH",
        ))
    print(format_table(
        ["fleet", "dp s", "equal s", "inf/s", "vs single", "J/inf", "sim"],
        rows,
        title=f"cluster bench: {trace.name}, {args.items} items/fleet",
    ))
    warm = payload["warm_rerun"]
    print(f"dp <= equal on all fleets: {payload['all_dp_beat_equal']}")
    print(f"warm rerun flat: {warm['flat']} "
          f"({warm['dse_points_scanned_after']} points scanned total)")
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {args.json}")
    sims_ok = all(
        row["sim"]["matches_analytic"] for row in payload["fleets"]
    )
    ok = payload["all_dp_beat_equal"] and warm["flat"] and sims_ok
    return 0 if ok else 1


def cmd_plan_capacity(args: argparse.Namespace) -> int:
    """Sweep fleet sizes: "how many boards for X req/s at p99 <= Y?"."""
    import json

    from . import obs
    from .cluster import plan_capacity
    from .serve import SchedulerConfig

    device = _device(args.device)
    config = SchedulerConfig(max_lanes=args.max_lanes or None)
    with obs.observed():
        obs.reset()
        plan = plan_capacity(
            args.rate, args.p99, device,
            max_nodes=args.max_nodes, poly_degree=args.poly_degree,
            config=config, horizon_s=args.horizon, seed=args.seed,
        )
    rows = [
        (p.nodes, f"{p.capacity_per_s:.1f}", f"{p.measured_p99_s:.2f}",
         f"{p.reject_rate:.1%}", f"{p.throughput_images_per_s:.1f}",
         f"{p.energy_per_inference_joules:.3f}",
         "yes" if p.meets else "no")
        for p in plan.frontier
    ]
    print(format_table(
        ["nodes", "cap/s", "p99 s", "reject", "img/s", "J/inf", "meets"],
        rows,
        title=f"capacity frontier on {device.name} "
              f"(target {args.rate:g} req/s, p99 <= {args.p99:g} s)",
    ))
    if plan.recommended_nodes is None:
        print(f"no fleet up to {plan.frontier[-1].nodes} nodes meets the "
              f"target; raise --max-nodes or relax the SLO")
    else:
        rec = plan.recommended
        print(f"recommendation: {plan.recommended_nodes} x {device.name} "
              f"({rec.capacity_per_s:.1f} req/s capacity, measured p99 "
              f"{rec.measured_p99_s:.2f} s)")
        print("design cache is now warm: an autoscaler sharing this "
              "planner spins up without re-running DSE")
    if args.json_out:
        payload = json.dumps(plan.as_dict(), indent=2) + "\n"
        if not _write_or_fail(args.json_out, payload, "capacity plan"):
            return 1
        print(f"capacity plan written to {args.json_out}")
    return 0 if plan.recommended_nodes is not None else 1


def cmd_autoscale(args: argparse.Namespace) -> int:
    """Replay a diurnal + flash-crowd day through the elastic fleet."""
    import json

    from . import obs
    from .serve import (
        AutoscalerConfig,
        FleetAutoscaler,
        SchedulerConfig,
        Slo,
        held_fraction,
        merge_arrivals,
    )
    from .serve.traffic import diurnal_arrivals, flash_crowd_arrivals

    device = _device(args.device)
    try:
        policy = AutoscalerConfig(
            min_nodes=args.min_nodes, max_nodes=args.max_nodes,
            cooldown_s=args.cooldown,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    requests = merge_arrivals(
        diurnal_arrivals(
            args.duration, args.base_rate, args.peak_rate,
            period_s=args.duration, seed=args.seed,
        ),
        flash_crowd_arrivals(
            args.duration, args.surge_base_rate, args.surge_start,
            args.surge_duration, surge_multiplier=args.surge_multiplier,
            seed=args.seed + 1,
        ),
    )
    with obs.observed():
        obs.reset()
        try:
            scaler = FleetAutoscaler(
                device, policy=policy,
                config=SchedulerConfig(max_lanes=args.max_lanes),
                slos=(Slo("p99-latency", "p99_latency_s", args.slo_p99,
                          window=1000),),
            )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        report = scaler.run(requests)
    serve = report.serve
    print(f"{len(requests)} requests over {args.duration:g} s "
          f"(surge {args.surge_multiplier:g}x at "
          f"{args.surge_start:g}-{args.surge_start + args.surge_duration:g} "
          f"s) on {device.name}")
    rows = [
        (f"{d.at_s:.1f}", d.action, f"{d.from_nodes}->{d.to_nodes}",
         f"{d.spin_up_s:.2f}" if d.action == "scale_up" else "-",
         {True: "warm", False: "cold", None: "-"}[d.warm],
         d.reason)
        for d in report.decisions
    ]
    print(format_table(
        ["t s", "action", "nodes", "spin-up s", "caches", "reason"],
        rows or [("-", "hold", "-", "-", "-", "no decision fired")],
        title=f"{len(report.resizes)} resizes, "
              f"{len(report.decisions) - len(report.resizes)} suppressed "
              f"(cooldown {policy.cooldown_s:g} s)",
    ))
    latency = serve.latency_percentiles()
    print(f"completed: {serve.completed}  rejected: {serve.rejected}  "
          f"expired: {serve.expired}")
    print(f"latency: p50 {latency['p50']:.2f} s, p99 {latency['p99']:.2f} s"
          f" (SLO threshold {args.slo_p99:g} s)")
    first_up = next(
        (d for d in report.resizes if d.action == "scale_up"), None
    )
    settle = (first_up.at_s + policy.cooldown_s) if first_up else 0.0
    held = held_fraction(serve, 10.0, args.slo_p99, start_s=settle)
    print(f"p99 held in {held:.1%} of 10 s windows after "
          f"{settle:.0f} s (first scale-up + cooldown)")
    static_max = policy.max_nodes * report.end_s
    print(f"node-seconds: {report.node_seconds:.0f} billed vs "
          f"{static_max:.0f} static-max "
          f"({1.0 - report.node_seconds / static_max:.0%} saved); "
          f"peak fleet {report.peak_nodes} nodes")
    ok = True
    if args.trace_out:
        try:
            obs.get_tracer().export_chrome_trace(args.trace_out)
            print(f"Chrome trace written to {args.trace_out}")
        except OSError as exc:
            print(f"error: cannot write Chrome trace to "
                  f"{args.trace_out!r}: {exc}", file=sys.stderr)
            ok = False
    if args.json_out:
        payload = json.dumps(report.as_dict(), indent=2) + "\n"
        if not _write_or_fail(args.json_out, payload, "autoscale report"):
            ok = False
        else:
            print(f"autoscale report written to {args.json_out}")
    if args.slo_strict and held < 0.99:
        return 1
    return 0 if ok else 1


def cmd_report(_args: argparse.Namespace) -> int:
    """Regenerate the headline evaluation (Table VII + Fig. 10 + Table IX)."""
    from .analysis import TABLE7_FXHENN_PAPER, TABLE7_LITERATURE
    from .fpga import energy_efficiency, speedup
    from .optypes import MODULE_OPS

    framework = FxHennFramework()
    lola = next(e for e in TABLE7_LITERATURE if e.system == "LoLa")
    rows = []
    fig10_rows = []
    for net_name, make in (("mnist", fxhenn_mnist_model),
                           ("cifar", fxhenn_cifar10_model)):
        trace = make().trace()
        for device in (acu9eg(), acu15eg()):
            design = framework.generate(trace, device)
            ref = lola.platform(net_name)
            ours = design.platform_result()
            paper = TABLE7_FXHENN_PAPER[(trace.name, device.name)]
            rows.append(
                (trace.name, device.name, paper, design.latency_seconds,
                 speedup(ours, ref), energy_efficiency(ours, ref))
            )
            desc = design.solution.point.describe()
            fig10_rows.append(
                (f"{trace.name} @ {device.name}",
                 design.solution.point.nc_ntt)
                + tuple(f"{desc[op.value][0]}/{desc[op.value][1]}"
                        for op in MODULE_OPS)
            )
    print(format_table(
        ["network", "device", "paper s", "modeled s", "speedup vs LoLa",
         "energy eff vs LoLa"],
        rows, title="Table VII (FxHENN rows)",
    ))
    print()
    print(format_table(
        ["design", "nc"] + [op.value for op in MODULE_OPS],
        fig10_rows, title="Fig. 10 (chosen parallelism, intra/inter)",
    ))
    mnist = fxhenn_mnist_model().trace()
    dev = acu9eg()
    fx = framework.generate(mnist, dev)
    base = framework.generate_baseline(mnist, dev)
    print()
    print(f"Table IX: FxHENN {fx.latency_seconds:.3f} s vs baseline "
          f"{base.latency_seconds:.3f} s "
          f"({base.latency_seconds / fx.latency_seconds:.1f}x from reuse; "
          f"paper: 0.24 s vs 1.17 s, 4.9x)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FxHENN reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list built-in FPGA targets")

    p_trace = sub.add_parser("trace", help="print a network's HE op trace")
    p_trace.add_argument("--network", default="mnist")

    p_gen = sub.add_parser("generate", help="run the DSE for a network/device")
    p_gen.add_argument("--network", default="mnist")
    p_gen.add_argument("--device", default="acu9eg")
    p_gen.add_argument("--json", help="write the design record to this file")
    p_gen.add_argument("--directives", help="write HLS directives to this file")

    p_exp = sub.add_parser("explore", help="print the Pareto frontier")
    p_exp.add_argument("--network", default="mnist")
    p_exp.add_argument("--device", default="acu9eg")
    p_exp.add_argument("--bram-min", type=int, default=350)
    p_exp.add_argument("--bram-max", type=int, default=1500)

    p_inf = sub.add_parser("infer", help="run a real encrypted inference")
    p_inf.add_argument("--network", default="tiny")
    p_inf.add_argument("--fast", action="store_true",
                       help="mnist only: reduced N=2048 parameters")
    p_inf.add_argument("--seed", type=int, default=4)
    p_inf.add_argument("--kernel-backend", metavar="NAME",
                       help="FHE kernel backend (reference, numpy-lazy, "
                            "montgomery, parallel, ...); overrides "
                            "REPRO_KERNEL_BACKEND")

    p_prof = sub.add_parser(
        "profile",
        help="profile an encrypted inference (latency + noise breakdown)",
    )
    p_prof.add_argument("--network", default="mnist")
    p_prof.add_argument("--full", action="store_true",
                        help="mnist only: full paper parameters (slow)")
    p_prof.add_argument("--seed", type=int, default=4)
    p_prof.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format: human tables or one JSON "
                             "object with the same per-layer/per-op data")
    p_prof.add_argument("--trace-out",
                        help="write Chrome-trace JSON to this file")
    p_prof.add_argument("--headroom-floor-bits", type=float, default=8.0,
                        help="precision floor subtracted from each layer's "
                             "analytic noise bits to form the headroom "
                             "column (default 8)")
    p_prof.add_argument("--kernel-backend", metavar="NAME",
                        help="FHE kernel backend (reference, numpy-lazy, "
                             "montgomery, parallel, ...); overrides "
                             "REPRO_KERNEL_BACKEND; reported in the "
                             "profile output")
    p_prof.add_argument("--diff", nargs=2, metavar=("OLD.json", "NEW.json"),
                        help="compare two saved '--format json' profiles "
                             "instead of running an inference: per-layer "
                             "and per-op deltas with regressions flagged")
    p_prof.add_argument("--diff-tolerance", type=float, default=0.10,
                        help="relative slowdown past which a --diff row "
                             "is flagged as a regression (default 0.10)")

    p_expl = sub.add_parser(
        "explain",
        help="reconstruct an inference's ciphertext lineage DAG and "
             "noise waterfall",
    )
    p_expl.add_argument("--network", default="mnist")
    p_expl.add_argument("--full", action="store_true",
                        help="mnist only: full paper parameters (slow)")
    p_expl.add_argument("--seed", type=int, default=4)
    p_expl.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="human tables or the full lineage record as "
                             "one JSON object")
    p_expl.add_argument("--audit", action="store_true",
                        help="decrypt at layer boundaries and check "
                             "measured noise against the analytic bounds "
                             "(debug; uses the secret key)")
    p_expl.add_argument("--headroom-bits", type=float, default=8.0,
                        help="noise-headroom threshold: layer boundaries "
                             "whose analytic bits fall below this emit a "
                             "flight-recorder violation event (default 8)")
    p_expl.add_argument("--top", type=int, default=5,
                        help="dominant noise spenders to list")
    p_expl.add_argument("--json-out",
                        help="write the lineage DAG record (JSON) to this "
                             "file")
    p_expl.add_argument("--dot",
                        help="write the lineage DAG (Graphviz DOT) to "
                             "this file")
    p_expl.add_argument("--kernel-backend", metavar="NAME",
                        help="FHE kernel backend (reference, numpy-lazy, "
                             "montgomery, parallel, ...); overrides "
                             "REPRO_KERNEL_BACKEND; recorded per op in "
                             "the lineage DAG")

    p_serve = sub.add_parser(
        "serve", help="simulate a slot-batched serving session"
    )
    p_serve.add_argument("--device", default="acu9eg")
    p_serve.add_argument("--window", type=float, default=0.5,
                         help="batch window in seconds")
    p_serve.add_argument("--requests", type=int, default=2000)
    p_serve.add_argument("--rate", type=float, default=5000.0,
                         help="mean arrival rate, requests/s")
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument("--max-lanes", type=int, default=None,
                         help="cap batch size below N/2")
    p_serve.add_argument("--queue-capacity", type=int, default=1_000_000)
    p_serve.add_argument("--deadline", type=float, default=None,
                         help="per-request deadline in seconds")
    p_serve.add_argument("--tenants", type=int, default=None,
                         help="simulate a multi-tenant population of N "
                              "distinct keys (zipf-ranked traffic; batches "
                              "never mix key groups)")
    p_serve.add_argument("--zipf-s", type=float, default=1.1,
                         help="zipf skew exponent for --tenants traffic")
    p_serve.add_argument("--slo-p99", type=float, default=30.0,
                         help="p99 latency SLO threshold in seconds")
    p_serve.add_argument("--slo-strict", action="store_true",
                         help="exit nonzero when any SLO is violated")
    p_serve.add_argument("--trace-out",
                         help="write the session's Chrome-trace JSON "
                              "(virtual request/batch tracks) to this file")
    p_serve.add_argument("--openmetrics-out",
                         help="write an OpenMetrics metrics snapshot of "
                              "the session to this file")
    p_serve.add_argument("--kernel-backend", metavar="NAME",
                         help="FHE kernel backend for any real CKKS work "
                              "in this process (the virtual-time sim is "
                              "unaffected); overrides REPRO_KERNEL_BACKEND")
    p_serve.add_argument("--alerts", metavar="RULES.json",
                         help="evaluate declarative alert rules (static "
                              "thresholds + SLO burn rates) along the "
                              "session's virtual clock; prints fired/"
                              "resolved counts per rule")

    p_costs = sub.add_parser(
        "costs",
        help="per-tenant cost attribution for a simulated serving "
             "session (exact reconciliation)",
    )
    p_costs.add_argument("--device", default="acu9eg")
    p_costs.add_argument("--window", type=float, default=0.5,
                         help="batch window in seconds")
    p_costs.add_argument("--requests", type=int, default=2000)
    p_costs.add_argument("--rate", type=float, default=5000.0,
                         help="mean arrival rate, requests/s")
    p_costs.add_argument("--seed", type=int, default=7)
    p_costs.add_argument("--tenants", type=int, default=8,
                         help="zipf-ranked multi-tenant population size")
    p_costs.add_argument("--zipf-s", type=float, default=1.1,
                         help="zipf skew exponent")
    p_costs.add_argument("--max-lanes", type=int, default=None,
                         help="cap batch size below N/2")
    p_costs.add_argument("--queue-capacity", type=int, default=1_000_000)
    p_costs.add_argument("--deadline", type=float, default=None,
                         help="per-request deadline in seconds")
    p_costs.add_argument("--format", choices=("text", "json"),
                         default="text",
                         help="human tables or the full cost report as "
                              "one JSON object")
    p_costs.add_argument("--alerts", metavar="RULES.json",
                         help="also evaluate alert rules along the "
                              "session's virtual clock")

    p_bt = sub.add_parser(
        "bench-throughput",
        help="sweep batch windows: latency vs amortized throughput",
    )
    p_bt.add_argument("--device", default="acu9eg")
    p_bt.add_argument("--windows", default="0.02,0.1,0.5,2.0",
                      help="comma-separated batch windows in seconds")
    p_bt.add_argument("--requests", type=int, default=2000)
    p_bt.add_argument("--rate", type=float, default=5000.0)
    p_bt.add_argument("--seed", type=int, default=7)
    p_bt.add_argument("--max-lanes", type=int, default=None)
    p_bt.add_argument("--json", help="write the full curve to this file")

    p_cluster = sub.add_parser(
        "cluster", help="multi-FPGA pipeline planning"
    )
    cluster_sub = p_cluster.add_subparsers(
        dest="cluster_command", required=True
    )
    p_cp = cluster_sub.add_parser(
        "plan", help="plan a network's pipeline across a fleet"
    )
    p_cp.add_argument("--network", default="mnist")
    p_cp.add_argument("--fleet", default="acu15eg,acu15eg,acu15eg",
                      help="comma-separated device names, pipeline order")
    p_cp.add_argument("--bandwidth-gbps", type=float, default=10.0)
    p_cp.add_argument("--link-latency-us", type=float, default=50.0)
    p_cp.add_argument("--method", default="dp",
                      help="cut solver: dp, greedy or equal")
    p_cp.add_argument("--repeat", type=int, default=1,
                      help="re-plan N times to demo the warm design cache")
    p_cp.add_argument("--json", help="write the plan record to this file")

    p_bc = sub.add_parser(
        "bench-cluster",
        help="benchmark fleet pipelines against single-device designs",
    )
    p_bc.add_argument("--network", default="mnist")
    p_bc.add_argument("--fleet", action="append", default=None,
                      help="comma-separated device names; repeatable "
                           "(default: the built-in fleet mix)")
    p_bc.add_argument("--bandwidth-gbps", type=float, default=10.0)
    p_bc.add_argument("--link-latency-us", type=float, default=50.0)
    p_bc.add_argument("--items", type=int, default=32,
                      help="inferences pushed through each simulated "
                           "pipeline")
    p_bc.add_argument("--json", help="write the full report to this file")

    p_pc = sub.add_parser(
        "plan-capacity",
        help="sweep fleet sizes: boards needed for a rate + p99 target",
    )
    p_pc.add_argument("--device", default="acu15eg")
    p_pc.add_argument("--rate", type=float, default=70.0,
                      help="target arrival rate, requests/s")
    p_pc.add_argument("--p99", type=float, default=13.0,
                      help="p99 latency SLO threshold in seconds")
    p_pc.add_argument("--max-nodes", type=int, default=None,
                      help="largest fleet to sweep (default: the "
                           "pipeline depth)")
    p_pc.add_argument("--poly-degree", type=int, default=8192)
    p_pc.add_argument("--horizon", type=float, default=30.0,
                      help="virtual seconds of Poisson replay per "
                           "candidate")
    p_pc.add_argument("--max-lanes", type=int, default=256,
                      help="cap batch size below N/2 (0 = uncapped)")
    p_pc.add_argument("--seed", type=int, default=0)
    p_pc.add_argument("--json-out",
                      help="write the capacity plan (JSON) to this file")

    p_as = sub.add_parser(
        "autoscale",
        help="replay a diurnal + flash-crowd day through the elastic "
             "fleet autoscaler",
    )
    p_as.add_argument("--device", default="acu15eg")
    p_as.add_argument("--duration", type=float, default=600.0,
                      help="replay length in virtual seconds")
    p_as.add_argument("--base-rate", type=float, default=4.0,
                      help="diurnal trough rate, requests/s")
    p_as.add_argument("--peak-rate", type=float, default=12.0,
                      help="diurnal crest rate, requests/s")
    p_as.add_argument("--surge-base-rate", type=float, default=6.0,
                      help="flash-crowd baseline rate, requests/s")
    p_as.add_argument("--surge-start", type=float, default=240.0)
    p_as.add_argument("--surge-duration", type=float, default=60.0)
    p_as.add_argument("--surge-multiplier", type=float, default=10.0)
    p_as.add_argument("--min-nodes", type=int, default=1)
    p_as.add_argument("--max-nodes", type=int, default=3)
    p_as.add_argument("--cooldown", type=float, default=30.0,
                      help="refractory seconds after any resize")
    p_as.add_argument("--max-lanes", type=int, default=256,
                      help="cap batch size below N/2")
    p_as.add_argument("--slo-p99", type=float, default=13.0,
                      help="p99 latency SLO threshold in seconds")
    p_as.add_argument("--slo-strict", action="store_true",
                      help="exit nonzero when p99 held in < 99%% of "
                           "windows after the first scale-up settles")
    p_as.add_argument("--seed", type=int, default=1)
    p_as.add_argument("--trace-out",
                      help="write the session's Chrome-trace JSON "
                           "(request, batch and autoscaler tracks) to "
                           "this file")
    p_as.add_argument("--json-out",
                      help="write the autoscale report (JSON) to this "
                           "file")

    sub.add_parser(
        "report", help="regenerate the headline evaluation tables"
    )

    return parser


_COMMANDS = {
    "devices": cmd_devices,
    "trace": cmd_trace,
    "generate": cmd_generate,
    "explore": cmd_explore,
    "infer": cmd_infer,
    "profile": cmd_profile,
    "explain": cmd_explain,
    "serve": cmd_serve,
    "costs": cmd_costs,
    "bench-throughput": cmd_bench_throughput,
    "cluster": cmd_cluster,
    "bench-cluster": cmd_bench_cluster,
    "plan-capacity": cmd_plan_capacity,
    "autoscale": cmd_autoscale,
    "report": cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
