"""Full FxHENN-MNIST encrypted inference (paper Sec. VII workload).

Runs the paper's 5-layer LoLa-MNIST topology (Cnv1, Act1, Fc1, Act2, Fc2)
on an encrypted synthetic image and verifies the decrypted logits against
the plaintext reference.

By default the run uses the paper's exact HE parameters (N=8192, 30-bit
primes, L=7), which takes a few minutes of pure-Python FHE — pass
``--fast`` to run a reduced N=2048 variant of the same topology in
seconds.

Usage::

    python examples/mnist_encrypted_inference.py --fast
    python examples/mnist_encrypted_inference.py          # paper parameters
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.fhe import CkksContext, CkksParameters, OperationRecorder
from repro.fhe.params import fxhenn_mnist_params
from repro.hecnn import fxhenn_mnist_model, synthetic_mnist_image


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="run at N=2048 instead of the paper's N=8192",
    )
    parser.add_argument("--seed", type=int, default=4, help="image seed")
    args = parser.parse_args()

    if args.fast:
        params = CkksParameters(
            poly_degree=2048, prime_bits=28, level=7, scale_bits=26
        )
    else:
        params = fxhenn_mnist_params()
    print(f"parameters: N={params.poly_degree}, {params.prime_bits}-bit "
          f"primes, L={params.level} "
          f"(log2 Q = {params.coeff_modulus_bits})")

    model = fxhenn_mnist_model(seed=0, params=params)
    trace = model.trace()
    print(f"network: {model.name} — {trace.hop_count} HOPs, "
          f"{trace.keyswitch_count} KeySwitch ops")

    t0 = time.time()
    context = CkksContext(params, seed=1)
    model.provision_keys(context)
    print(f"key generation: {time.time() - t0:.1f} s "
          f"({len(context.galois_keys.keys)} rotation keys)")

    image = synthetic_mnist_image(seed=args.seed)
    plain_logits = model.infer_plain(image)

    t0 = time.time()
    recorder = OperationRecorder()
    encrypted_logits = model.infer(context, image, recorder=recorder)
    elapsed = time.time() - t0

    print(f"\nencrypted inference: {elapsed:.1f} s wall clock "
          f"(software FHE; the paper's accelerator: 0.24 s on ACU9EG)")
    print(f"executed HE operations: {recorder.total} "
          f"(trace predicted {trace.hop_count})")
    print(f"\n{'class':>6s} {'plaintext':>12s} {'encrypted':>12s}")
    for i, (p, e) in enumerate(zip(plain_logits, encrypted_logits)):
        print(f"{i:6d} {p:12.5f} {e:12.5f}")
    err = np.max(np.abs(encrypted_logits - plain_logits))
    print(f"\nmax CKKS error: {err:.2e}")
    pred_plain = int(np.argmax(plain_logits))
    pred_enc = int(np.argmax(encrypted_logits))
    print(f"argmax agreement: plaintext={pred_plain} encrypted={pred_enc} "
          f"{'OK' if pred_plain == pred_enc else 'MISMATCH'}")


if __name__ == "__main__":
    main()
