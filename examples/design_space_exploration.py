"""Explore the accelerator design space and plot the Pareto frontier.

Reproduces the paper's Fig. 9 workflow: enumerate every feasible design
solution for FxHENN-MNIST under a range of BRAM budgets, extract the
Pareto frontier, and render it as an ASCII scatter — no plotting
dependencies required.

Usage::

    python examples/design_space_exploration.py
    python examples/design_space_exploration.py --bram-min 400 --bram-max 1200
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.core import pareto_frontier, solution_scatter
from repro.fpga import acu9eg
from repro.hecnn import fxhenn_mnist_model


def ascii_scatter(points, frontier, width: int = 72, height: int = 20) -> str:
    """Render (BRAM, latency) points as a terminal scatter plot."""
    xs = [p.bram_blocks for p in points]
    ys = [p.latency_seconds for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    frontier_ids = {id(p) for p in frontier}

    def cell(p):
        cx = int((p.bram_blocks - x0) / max(1, x1 - x0) * (width - 1))
        cy = int((p.latency_seconds - y0) / max(1e-12, y1 - y0) * (height - 1))
        return height - 1 - cy, cx

    for p in points:
        r, c = cell(p)
        if grid[r][c] == " ":
            grid[r][c] = "."
    for p in frontier:
        r, c = cell(p)
        grid[r][c] = "#"
    lines = [f"latency {y1:.3f}s"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append(f"+{'-' * width}  BRAM {x0}..{x1} blocks")
    lines.append(f"latency {y0:.3f}s at bottom; '#' = Pareto frontier")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bram-min", type=int, default=350)
    parser.add_argument("--bram-max", type=int, default=1500)
    args = parser.parse_args()

    trace = fxhenn_mnist_model().trace()
    device = acu9eg()
    print(f"enumerating the design space for {trace.name} on {device.name} "
          f"(BRAM budget {args.bram_min}..{args.bram_max} blocks)")
    points = solution_scatter(
        trace, device, bram_min=args.bram_min, bram_max=args.bram_max
    )
    frontier = pareto_frontier(points)
    print(f"{len(points)} feasible design solutions, "
          f"{len(frontier)} on the Pareto frontier\n")
    print(ascii_scatter(points, frontier))
    print()
    rows = [
        (p.bram_blocks, f"{p.latency_seconds:.4f}",
         p.solution.point.nc_ntt,
         str(p.solution.point.describe()["KeySwitch"]),
         str(p.solution.point.describe()["Rescale"]))
        for p in frontier
    ]
    print(format_table(
        ["BRAM blocks", "latency s", "nc_NTT", "KeySwitch", "Rescale"],
        rows, title="Pareto frontier (Fig. 9)",
    ))


if __name__ == "__main__":
    main()
