"""Bring your own HE-CNN and FPGA: the framework beyond the paper's setup.

The paper stresses that FxHENN "can be used to generate FPGA accelerators
for other HE-CNN models ... without loss of generality" (Sec. VII-B).
This example builds a custom 5-layer HE-CNN for 16x16 inputs, defines a
hypothetical mid-range FPGA, runs a functional encrypted inference to
prove the packing is correct, and generates an accelerator for it.

Usage::

    python examples/custom_network_and_device.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FxHennFramework
from repro.fhe import CkksContext, CkksParameters
from repro.fpga import FpgaDevice
from repro.hecnn import (
    ConvPacking,
    ConvSpec,
    DensePacking,
    DenseSpec,
    HeCnn,
    PackedConv,
    PackedDense,
    PackedSquare,
    PlainConv2d,
    PlainDense,
    PlainNetwork,
    PlainSquare,
    glorot_weights,
    small_bias,
)


def build_custom_model(params: CkksParameters, seed: int = 0) -> HeCnn:
    """Conv(4 maps, 3x3, s2) -> square -> FC 196 -> 32 -> square -> FC 8."""
    rng = np.random.default_rng(seed)
    conv = ConvSpec(
        in_channels=1, out_channels=4, kernel_size=3, stride=2, padding=0,
        in_size=16,
    )
    slots = params.slot_count
    conv_w = glorot_weights((4, 1, 3, 3), rng)
    conv_b = small_bias(4, rng)
    packing = ConvPacking(spec=conv, slot_count=slots)
    layers = [PackedConv("Cnv1", packing, conv_w, conv_b)]
    plain = [PlainConv2d(conv, conv_w, conv_b)]

    layers.append(PackedSquare("Act1", layers[-1].output_layout))
    plain.append(PlainSquare())

    fc1_spec = DenseSpec(conv.output_count, 32)
    fc1_w = glorot_weights((32, conv.output_count), rng)
    fc1_b = small_bias(32, rng)
    fc1_packing = DensePacking(spec=fc1_spec, input_layout=layers[-1].output_layout)
    layers.append(PackedDense("Fc1", fc1_packing, fc1_w, fc1_b))
    plain.append(PlainDense(fc1_spec, fc1_w, fc1_b))

    layers.append(PackedSquare("Act2", layers[-1].output_layout))
    plain.append(PlainSquare())

    fc2_spec = DenseSpec(32, 8)
    fc2_w = glorot_weights((8, 32), rng)
    fc2_b = small_bias(8, rng)
    fc2_packing = DensePacking(
        spec=fc2_spec, input_layout=layers[-1].output_layout,
        merge_output=False,
    )
    layers.append(PackedDense("Fc2", fc2_packing, fc2_w, fc2_b))
    plain.append(PlainDense(fc2_spec, fc2_w, fc2_b))

    return HeCnn(
        name="Custom-16x16",
        poly_degree=params.poly_degree,
        base_level=params.level,
        input_packing=packing,
        layers=layers,
        plain_reference=PlainNetwork(plain),
        prime_bits=params.prime_bits,
    )


def main() -> None:
    params = CkksParameters(
        poly_degree=1024, prime_bits=28, level=7, scale_bits=26
    )
    model = build_custom_model(params)
    trace = model.trace()
    print(f"custom network: {model.name}")
    for lt in trace.layers:
        print(f"  {lt.name:5s} {lt.kind:3s} HOPs={lt.hop_count:4d} "
              f"KS={lt.keyswitch_count:3d}")
    print(f"total: {trace.hop_count} HOPs / {trace.keyswitch_count} KS")

    # Functional check: the packing computes the same function.
    print("\nrunning encrypted inference...")
    context = CkksContext(params, seed=7)
    model.provision_keys(context)
    image = np.random.default_rng(1).uniform(0, 1, (1, 16, 16))
    enc = model.infer(context, image)
    plain = model.infer_plain(image)
    print(f"max CKKS error vs plaintext: {np.max(np.abs(enc - plain)):.2e}")

    # A hypothetical mid-range device between the two ALINX boards.
    device = FpgaDevice(
        name="CustomBoard", dsp_slices=1800, bram_blocks=640,
        uram_blocks=48, tdp_watts=8.0,
    )
    design = FxHennFramework().generate(model, device)
    print(f"\naccelerator for {device.name}: "
          f"{design.latency_seconds * 1e3:.2f} ms modeled, "
          f"DSP {design.utilization()['dsp']:.0%}, "
          f"BRAM peak {design.utilization()['bram_peak']:.0%}")
    print(f"chosen point: nc_NTT={design.solution.point.nc_ntt} "
          f"{design.solution.point.describe()}")


if __name__ == "__main__":
    main()
