"""Generate FPGA accelerator designs for HE-CNN models (the paper's flow).

Reproduces the FxHENN design flow of Fig. 1 for any combination of the
benchmark networks and target devices: trace extraction, exhaustive design
space exploration, and emission of the accelerator design solution with
HLS directives.  Also generates the no-reuse baseline for comparison
(Sec. VII-C).

Usage::

    python examples/generate_accelerator.py --network mnist --device acu9eg
    python examples/generate_accelerator.py --network cifar10 --device acu15eg
    python examples/generate_accelerator.py --all
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.core import FxHennFramework
from repro.fpga import device_by_name
from repro.hecnn import fxhenn_cifar10_model, fxhenn_mnist_model

NETWORKS = {
    "mnist": fxhenn_mnist_model,
    "cifar10": fxhenn_cifar10_model,
}


def generate(network: str, device: str) -> None:
    model = NETWORKS[network]()
    dev = device_by_name(device)
    framework = FxHennFramework()

    print(f"\n### {model.name} on {dev.name} "
          f"({dev.dsp_slices} DSP, {dev.bram_blocks} BRAM36K, "
          f"{dev.uram_blocks} URAM) ###")
    design = framework.generate(model, dev)
    baseline = framework.generate_baseline(model, dev)

    print(f"DSE: {design.dse.evaluated} points evaluated, "
          f"{design.dse.feasible} feasible")
    rows = [
        ("FxHENN", design.latency_seconds,
         design.solution.dsp_usage / dev.dsp_slices,
         design.solution.bram_peak / design.solution.bram_budget),
        ("baseline (no reuse)", baseline.latency_seconds,
         baseline.dsp_usage / dev.dsp_slices,
         baseline.bram_total / dev.bram_blocks),
    ]
    print(format_table(
        ["scheme", "latency s", "DSP util", "BRAM util"], rows
    ))
    print(f"speedup from reuse + DSE: "
          f"{baseline.latency_seconds / design.latency_seconds:.2f}x")

    per_layer = [
        (l.name, l.kind, l.level, l.latency_seconds(dev.clock_hz),
         l.bram_blocks, f"{l.on_chip_fraction:.0%}")
        for l in design.solution.layers
    ]
    print(format_table(
        ["layer", "kind", "level", "latency s", "BRAM blocks", "on-chip"],
        per_layer, title="per-layer breakdown",
    ))
    print("\nHLS directives:")
    print(design.hls_directives())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", choices=sorted(NETWORKS), default="mnist")
    parser.add_argument("--device", default="acu9eg")
    parser.add_argument(
        "--all", action="store_true",
        help="generate all four (network, device) designs",
    )
    args = parser.parse_args()

    if args.all:
        for network in NETWORKS:
            for device in ("acu9eg", "acu15eg"):
                generate(network, device)
    else:
        generate(args.network, args.device)


if __name__ == "__main__":
    main()
