"""Quickstart: encrypted CNN inference plus accelerator generation.

Runs in well under a minute:

1. build a small HE-CNN and run a *real* encrypted inference with the
   bundled RNS-CKKS library, checking the result against the plaintext
   network;
2. extract the network's HE operation trace (the input to the performance
   model);
3. generate an FPGA accelerator design for the paper's FxHENN-MNIST
   network on the ACU9EG board and print the modeled latency, resource
   utilization, and the emitted HLS directives.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FxHennFramework
from repro.fhe import CkksContext, OperationRecorder, tiny_test_params
from repro.fpga import acu9eg
from repro.hecnn import fxhenn_mnist_model, tiny_mnist_model


def encrypted_inference_demo() -> None:
    print("=" * 70)
    print("1. Encrypted inference with the bundled RNS-CKKS library")
    print("=" * 70)
    params = tiny_test_params(poly_degree=512, level=7)
    model = tiny_mnist_model(seed=3, params=params)
    context = CkksContext(params, seed=11)
    model.provision_keys(context)

    image = np.random.default_rng(5).uniform(0, 1, (1, 8, 8))
    recorder = OperationRecorder()
    encrypted_logits = model.infer(context, image, recorder=recorder)
    plain_logits = model.infer_plain(image)

    print(f"network: {model.name} (N={params.poly_degree}, L={params.level})")
    print(f"plaintext logits: {np.round(plain_logits, 4)}")
    print(f"encrypted logits: {np.round(encrypted_logits, 4)}")
    err = np.max(np.abs(encrypted_logits - plain_logits))
    print(f"max CKKS error:   {err:.2e}")
    print(f"HE operations executed: {recorder.total}")
    for op, count in sorted(recorder.counts.items(), key=lambda kv: -kv[1]):
        print(f"  {op.value:10s} {count}")


def trace_demo() -> None:
    print()
    print("=" * 70)
    print("2. Operation trace of the paper's FxHENN-MNIST network")
    print("=" * 70)
    trace = fxhenn_mnist_model().trace()
    print(f"{'layer':6s} {'kind':4s} {'HOPs':>6s} {'KeySwitch':>10s} {'level':>6s}")
    for lt in trace.layers:
        print(
            f"{lt.name:6s} {lt.kind:4s} {lt.hop_count:6d} "
            f"{lt.keyswitch_count:10d} {lt.level:6d}"
        )
    print(
        f"total: {trace.hop_count} HOPs, {trace.keyswitch_count} KeySwitch "
        f"(paper: 826 / 280)"
    )


def accelerator_demo() -> None:
    print()
    print("=" * 70)
    print("3. Accelerator generation (DSE) for FxHENN-MNIST on ACU9EG")
    print("=" * 70)
    design = FxHennFramework().generate(fxhenn_mnist_model(), acu9eg())
    util = design.utilization()
    print(f"modeled latency:  {design.latency_seconds * 1e3:.1f} ms "
          f"(paper: 240 ms)")
    print(f"energy/inference: {design.energy_joules:.2f} J")
    print(f"DSP utilization:  {util['dsp']:.1%}")
    print(f"BRAM peak:        {util['bram_peak']:.1%} "
          f"(aggregate with reuse: {util['bram_aggregate']:.1%})")
    print(f"design point:     nc_NTT={design.solution.point.nc_ntt}, "
          f"{design.solution.point.describe()}")
    print()
    print("emitted HLS directives:")
    print(design.hls_directives())


if __name__ == "__main__":
    encrypted_inference_demo()
    trace_demo()
    accelerator_demo()
