"""Model a batched encrypted-inference service (throughput extension).

The paper optimizes single-image latency.  This example asks the service
question: given a stream of encrypted images, should the accelerator run
them sequentially (keeping FxHENN's inter-layer buffer reuse) or pipeline
them across layers (forfeiting the reuse so all layers stay resident)?

Usage::

    python examples/batch_service.py
    python examples/batch_service.py --device acu15eg --batches 1 8 64 512
"""

from __future__ import annotations

import argparse

from repro.analysis import format_table
from repro.core import (
    FxHennFramework,
    crossover_batch_size,
    pipelined_batch,
    sequential_batch,
)
from repro.fpga import FpgaDevice, device_by_name
from repro.hecnn import fxhenn_mnist_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--device", default="acu9eg")
    parser.add_argument(
        "--batches", type=int, nargs="+", default=[1, 8, 64, 512]
    )
    args = parser.parse_args()

    trace = fxhenn_mnist_model().trace()
    device = device_by_name(args.device)
    design = FxHennFramework().generate(trace, device)
    point = design.solution.point
    print(f"{trace.name} on {device.name}; DSE-chosen point "
          f"nc_NTT={point.nc_ntt} {point.describe()}\n")

    rows = []
    for batch in args.batches:
        seq = sequential_batch(trace, point, device, batch, device.bram_blocks)
        pipe = pipelined_batch(trace, point, device, batch, device.bram_blocks)
        winner = "sequential" if seq.total_seconds <= pipe.total_seconds else "pipelined"
        rows.append(
            (batch, seq.per_image_seconds, seq.throughput_per_second,
             pipe.per_image_seconds, pipe.throughput_per_second, winner)
        )
    print(format_table(
        ["batch", "seq s/img", "seq img/s", "pipe s/img", "pipe img/s",
         "winner"],
        rows, title="sequential reuse vs layer pipelining",
    ))

    crossover = crossover_batch_size(trace, point, device)
    if crossover is None:
        print(f"\nOn {device.name}, partitioned buffers spill so hard that "
              "the paper's sequential-reuse design wins at every batch size.")
    else:
        print(f"\nPipelining pays off from batch size {crossover}.")

    big = FpgaDevice(
        name="BigMem", dsp_slices=device.dsp_slices, bram_blocks=8192
    )
    crossover_big = crossover_batch_size(trace, point, big)
    print(f"On a hypothetical {big.bram_blocks}-block device, the pipelined "
          f"crossover moves to batch size {crossover_big}.")


if __name__ == "__main__":
    main()
